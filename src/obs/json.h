// Minimal streaming JSON writer with deterministic number formatting.
//
// Every observability artifact (Chrome traces, metrics dumps, bench result
// records) is emitted through this writer so the output is byte-identical
// across runs and platforms: keys are written in the order the caller
// chooses (callers iterate ordered containers), doubles use the shortest
// round-trip representation (std::to_chars), and no locale is consulted.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace loadex::obs {

/// Escape a string for inclusion in a JSON document (adds no quotes).
std::string jsonEscape(std::string_view s);

/// Shortest round-trip decimal representation of a double. Non-finite
/// values (which JSON cannot carry) are clamped to null.
std::string jsonNumber(double v);

class JsonWriter {
 public:
  /// indent <= 0 writes compact single-line JSON.
  explicit JsonWriter(std::ostream& os, int indent = 2);

  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();

  /// Object key; must be followed by exactly one value or container.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& valueNull();
  /// Pre-formatted number/token, written verbatim (caller guarantees it is
  /// valid JSON — used for fixed-precision timestamps).
  JsonWriter& valueRaw(std::string_view token);

  // Convenience: key + scalar value in one call.
  template <typename T>
  JsonWriter& field(std::string_view k, T v) {
    key(k);
    return value(v);
  }

 private:
  void beforeValue();
  void newlineIndent();

  struct Level {
    bool is_array = false;
    bool has_items = false;
  };

  std::ostream& os_;
  int indent_;
  bool pending_key_ = false;
  std::vector<Level> stack_;
};

}  // namespace loadex::obs
