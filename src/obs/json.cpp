#include "obs/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/expect.h"

namespace loadex::obs {

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string jsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

JsonWriter::JsonWriter(std::ostream& os, int indent)
    : os_(os), indent_(indent) {}

void JsonWriter::newlineIndent() {
  if (indent_ <= 0) return;
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i)
    for (int j = 0; j < indent_; ++j) os_ << ' ';
}

void JsonWriter::beforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (stack_.empty()) return;
  Level& top = stack_.back();
  if (top.has_items) os_ << ',';
  top.has_items = true;
  newlineIndent();
}

JsonWriter& JsonWriter::beginObject() {
  beforeValue();
  os_ << '{';
  stack_.push_back({false, false});
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  LOADEX_EXPECT(!stack_.empty() && !stack_.back().is_array,
                "endObject without a matching beginObject");
  const bool had_items = stack_.back().has_items;
  stack_.pop_back();
  if (had_items) newlineIndent();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  beforeValue();
  os_ << '[';
  stack_.push_back({true, false});
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  LOADEX_EXPECT(!stack_.empty() && stack_.back().is_array,
                "endArray without a matching beginArray");
  const bool had_items = stack_.back().has_items;
  stack_.pop_back();
  if (had_items) newlineIndent();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  LOADEX_EXPECT(!stack_.empty() && !stack_.back().is_array,
                "key() outside of an object");
  LOADEX_EXPECT(!pending_key_, "two keys in a row");
  Level& top = stack_.back();
  if (top.has_items) os_ << ',';
  top.has_items = true;
  newlineIndent();
  os_ << '"' << jsonEscape(k) << '"' << (indent_ > 0 ? ": " : ":");
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  beforeValue();
  os_ << '"' << jsonEscape(s) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  beforeValue();
  os_ << jsonNumber(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  beforeValue();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  beforeValue();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  beforeValue();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::valueNull() {
  beforeValue();
  os_ << "null";
  return *this;
}

JsonWriter& JsonWriter::valueRaw(std::string_view token) {
  beforeValue();
  os_ << token;
  return *this;
}

}  // namespace loadex::obs
