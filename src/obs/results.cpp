#include "obs/results.h"

#include <fstream>
#include <ostream>

#include "common/log.h"
#include "obs/json.h"

namespace loadex::obs {

void ResultWriter::write(std::ostream& os) const {
  JsonWriter w(os);
  w.beginObject();
  w.field("schema", kSchemaName);
  w.field("schema_version", kSchemaVersion);
  w.field("bench", bench_);
  w.key("meta").beginObject();
  for (const auto& [k, v] : meta_) w.field(k, v);
  w.endObject();
  w.key("records").beginArray();
  for (const auto& r : records_) {
    w.beginObject();
    w.field("problem", r.problem);
    w.field("mechanism", r.mechanism);
    w.field("strategy", r.strategy);
    w.field("nprocs", r.nprocs);
    w.field("completed", r.completed);
    w.field("makespan_s", r.makespan_s);
    w.field("peak_active_mem", r.peak_active_mem);
    w.field("avg_peak_active_mem", r.avg_peak_active_mem);
    w.field("total_flops", r.total_flops);
    w.field("state_messages", r.state_messages);
    w.field("state_bytes", r.state_bytes);
    w.field("state_wire_bytes", r.state_wire_bytes);
    w.field("app_messages", r.app_messages);
    w.field("dynamic_decisions", r.dynamic_decisions);
    w.field("selections", r.selections);
    w.field("snapshots", r.snapshots);
    w.field("snapshot_rearms", r.snapshot_rearms);
    w.field("sim_events", r.sim_events);
    w.key("stall").beginObject();
    w.field("snapshot_max_s", r.stall_snapshot_max_s);
    w.field("snapshot_total_s", r.stall_snapshot_total_s);
    w.field("busy_max_s", r.busy_max_s);
    w.field("paused_max_s", r.paused_max_s);
    w.field("msg_handle_total_s", r.msg_handle_total_s);
    w.endObject();
    w.field("schedule_digest", r.schedule_digest);
    if (!r.extra.empty()) {
      w.key("extra").beginObject();
      for (const auto& [k, v] : r.extra) w.field(k, v);
      w.endObject();
    }
    w.endObject();
  }
  w.endArray();
  w.endObject();
  os << "\n";
}

bool ResultWriter::writeFile(const std::string& path) const {
  std::ofstream f(path);
  if (!f) {
    LOG_WARN("cannot open result output file: " << path);
    return false;
  }
  write(f);
  return static_cast<bool>(f);
}

}  // namespace loadex::obs
