// Structured, schema-versioned benchmark result records.
//
// Every bench driver emits — next to its human-readable table — one JSON
// document describing each run: mechanism, procs, problem, makespan, peak
// memory, message/byte counts and the stall breakdown. The documents are
// the data points of the repo's performance trajectory (BENCH_*.json) and
// the input of `tools/trace_stats.py diff` (A-vs-B regression reports).
//
// Schema: see kSchemaName/kSchemaVersion; bump the version on any
// backwards-incompatible field change and teach trace_stats.py both.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace loadex::obs {

struct BenchResultRecord {
  std::string problem;
  std::string mechanism;
  std::string strategy;
  int nprocs = 0;
  bool completed = false;

  double makespan_s = 0.0;          ///< simulated factorization time
  double peak_active_mem = 0.0;     ///< max-over-procs entries
  double avg_peak_active_mem = 0.0;
  double total_flops = 0.0;

  std::int64_t state_messages = 0;
  std::int64_t state_bytes = 0;      ///< payload bytes, sender-counted
  std::int64_t state_wire_bytes = 0; ///< incl. per-message overhead
  std::int64_t app_messages = 0;
  std::int64_t dynamic_decisions = 0;
  std::int64_t selections = 0;
  std::int64_t snapshots = 0;
  std::int64_t snapshot_rearms = 0;
  std::uint64_t sim_events = 0;

  // Stall breakdown (where the time went, §4.5's metric and friends).
  double stall_snapshot_max_s = 0.0;    ///< max-over-procs frozen time
  double stall_snapshot_total_s = 0.0;  ///< summed over procs
  double busy_max_s = 0.0;              ///< max-over-procs compute time
  double paused_max_s = 0.0;            ///< max-over-procs task-paused time
  double msg_handle_total_s = 0.0;      ///< summed message-treatment cost

  /// Event-schedule digest of the run (replay-determinism fingerprint).
  std::uint64_t schedule_digest = 0;

  /// Bench-specific extra columns (ordered, so output is deterministic).
  std::map<std::string, double> extra;
};

/// Collects records and writes the schema-versioned JSON document.
class ResultWriter {
 public:
  static constexpr const char* kSchemaName = "loadex.bench-result";
  static constexpr int kSchemaVersion = 1;

  explicit ResultWriter(std::string bench_name) : bench_(std::move(bench_name)) {}

  /// Run-level metadata (scale, seed, ...) stored next to the records.
  void setMeta(const std::string& key, double value) { meta_[key] = value; }

  void add(BenchResultRecord record) { records_.push_back(std::move(record)); }
  std::size_t size() const { return records_.size(); }

  void write(std::ostream& os) const;
  /// Returns false (and logs) if the file cannot be written.
  bool writeFile(const std::string& path) const;

 private:
  std::string bench_;
  std::map<std::string, double> meta_;
  std::vector<BenchResultRecord> records_;
};

}  // namespace loadex::obs
