// One rank of the multi-process world: a single-threaded epoll event
// loop that is also the mechanism's Transport.
//
// Where the sim world delivers messages through a virtual-time event
// queue and the rt world through in-process MPSC mailboxes, a NetWorld
// crosses a real kernel boundary: every rank is its own OS process, state
// messages are serialized through net/wire.h and travel over TCP or
// Unix-domain stream sockets, and time comes from rt's MonotonicClock
// seam (the one lint-sanctioned window onto host time).
//
// Threading model: there is exactly one thread — the process's main
// thread runs the epoll loop, fires timers, replays the script and calls
// into the mechanism. That makes the whole object thread-confined (the
// LOADEX_THREAD_CONFINED marker turns a stray cross-thread touch into a
// debug abort) and means the mechanism code runs under the same
// single-writer discipline it enjoys on a sim process or an rt shard —
// no locks, no LockRank entry for the loop.
//
// Write coalescing: sendState appends the encoded frame to the
// destination connection's outbound buffer; with coalescing on, buffers
// are flushed once per loop iteration (after a whole batch of deliveries
// and timer callbacks has run), so PR 4's lazy-broadcast win — one
// logical broadcast, N-1 sends — costs ~1 write(2) per destination per
// batch instead of one per message. The per-message-flush arm
// (coalesce = false) is the baseline bench_net_localhost compares
// against.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/faults.h"
#include "common/rng.h"
#include "common/sync.h"
#include "common/types.h"
#include "core/audit.h"
#include "core/mechanism.h"
#include "harness/script.h"
#include "net/socket.h"
#include "net/wire.h"
#include "rt/clock.h"
#include "rt/timer_wheel.h"

namespace loadex::net {

enum class NetTransportKind { kTcp, kUds };

const char* netTransportKindName(NetTransportKind k);
NetTransportKind parseNetTransportKind(const std::string& name);

/// Net-level failure detector driven by frame arrivals and kPing beacons
/// (independent of the protocol-level heartbeats of the hardened
/// increment stream). Disabled by default: quiescence detection requires
/// a run that actually goes quiet.
struct NetHeartbeatConfig {
  double period_s = 0.0;        ///< kPing period; 0 disables the detector
  double suspect_after_s = 0.0; ///< silence before notePeerSuspect
  double dead_after_s = 0.0;    ///< silence before notePeerDead
  bool enabled() const { return period_s > 0.0; }
};

struct NetOptions {
  NetTransportKind transport = NetTransportKind::kUds;
  /// Coalesce outbound frames per connection and flush once per loop
  /// iteration; false = one flush per message (the baseline arm).
  bool coalesce = true;
  /// Script-time to wall-time factor; 0 floods every op immediately.
  double time_scale = 0.0;
  NetHeartbeatConfig heartbeat;
  /// Send-side fault emulation (drop / duplicate), seeded per sender.
  /// Blackouts match on (self, dst, now) like the sim network.
  FaultPlan faults;
  double setup_timeout_s = 10.0;  ///< mesh connect + barrier budget
  double run_timeout_s = 60.0;    ///< supervisor drain budget
};

/// Per-channel message accounting; the conservation identity the
/// differential asserts is posted + duplicated == delivered + dropped,
/// summed over all ranks.
struct NetChannelCounters {
  std::int64_t posted = 0;      ///< transport-level sends requested
  std::int64_t dropped = 0;     ///< dropped by fault emulation at send
  std::int64_t duplicated = 0;  ///< extra copies injected at send
  std::int64_t delivered = 0;   ///< frames decoded and handed up
};

struct NetRunStats {
  NetChannelCounters state;  ///< mechanism state channel
  NetChannelCounters work;   ///< delegated application work
  std::int64_t frames_sent = 0;       ///< mesh frames enqueued (excl. pings)
  std::int64_t frames_lost = 0;       ///< buffered frames lost to a dead conn
  std::int64_t frames_delivered = 0;  ///< mesh frames decoded (excl. pings)
  std::int64_t bytes_sent = 0;
  std::int64_t bytes_received = 0;
  std::int64_t flush_writes = 0;    ///< write(2) syscalls on mesh sockets
  std::int64_t flush_partials = 0;  ///< short writes (kernel buffer full)
  std::int64_t reconnects = 0;
  std::int64_t seq_violations = 0;  ///< per-link wire FIFO gaps observed
  std::int64_t decode_errors = 0;   ///< corrupt frames (connection dropped)
  std::int64_t timers_fired = 0;
  std::int64_t pings_sent = 0;
  std::int64_t peers_suspected = 0;
};

/// Configuration of one rank process.
struct NetRankConfig {
  Rank self = 0;
  int nprocs = 1;
  std::string dir;  ///< run directory: UDS paths + the control socket
  NetOptions opts;
};

/// Rendezvous paths inside a run directory.
std::string ctlSocketPath(const std::string& dir);
std::string rankSocketPath(const std::string& dir, Rank r);

class NetWorld final : public core::Transport {
 public:
  explicit NetWorld(NetRankConfig cfg);
  ~NetWorld() override;

  // ---- core::Transport --------------------------------------------------
  Rank self() const override { return cfg_.self; }
  int nprocs() const override { return cfg_.nprocs; }
  SimTime now() const override { return clock_.now(); }
  void sendState(Rank dst, core::StateTag tag, Bytes size,
                 std::shared_ptr<const sim::Payload> payload) override;
  void schedule(SimTime delay, std::function<void()> fn) override;

  /// Send a master's delegated share to the chosen slave (application
  /// channel; the receiver applies addLocalLoad(share, true)).
  void sendWork(Rank dst, const core::LoadMetrics& share);

  /// Bind the rank's mechanism; must happen before run().
  void bind(core::Mechanism* mech) { mech_ = mech; }

  /// Phase 1: listen, dial the supervisor, exchange Hello/Peers, connect
  /// the full mesh (with backoff), identify every inbound peer, send
  /// Ready. Returns false on timeout or a dead supervisor.
  bool setup();

  /// Phase 2: event loop — wait for Go, replay this rank's slice of the
  /// script, answer quiescence probes, and on Stop finish the audit and
  /// send the Summary frame. Returns the process exit code (0 = clean).
  int run(const harness::Script& script, core::ProtocolAuditor* auditor);

  const NetRunStats& stats() const { return stats_; }

 private:
  struct OutConn {
    Fd fd;
    bool up = false;
    std::vector<std::uint8_t> buf;   ///< encoded frames not yet written
    std::size_t buf_frames = 0;      ///< whole frames currently buffered
    std::uint32_t next_seq = 1;
    bool want_write = false;         ///< EPOLLOUT armed (kernel buffer full)
    bool flush_pending = false;      ///< coalescing: flush at end of pass
    double backoff_s = 0.0;          ///< current reconnect backoff
    bool reconnect_armed = false;
  };
  struct InConn {
    Fd fd;
    Rank peer = kNoRank;             ///< kNoRank until the Hello arrives
    std::vector<std::uint8_t> buf;   ///< undecoded inbound bytes
    std::uint32_t expect_seq = 1;
  };

  /// A script op in per-rank replay order.
  struct Op {
    enum class Kind { kLoad, kSelect, kNoMoreMaster };
    SimTime time = 0.0;
    Kind kind = Kind::kLoad;
    core::LoadMetrics delta;  ///< kLoad
    double share = 0.0;       ///< kSelect
  };

  // -- connection lifecycle --
  bool openListener();
  bool connectSupervisor();
  bool connectPeer(Rank r);
  void onPeerDown(Rank r);
  void armReconnect(Rank r);
  void acceptInbound();

  // -- frame I/O --
  void enqueueFrame(Rank dst, FrameKind kind,
                    const std::function<void(WireWriter&)>& body,
                    bool count_mesh);
  void sendCtl(FrameKind kind,
               const std::function<void(WireWriter&)>& body = {});
  void flushConn(Rank dst);
  void flushPending();
  void readConn(InConn& c);
  void readCtl();
  bool drainFrames(InConn& c);
  void handleMeshFrame(const InConn& c, const FrameView& f);
  void handleCtlFrame(const FrameView& f);
  void noteHeardFrom(Rank peer);

  // -- replay --
  void buildOps(const harness::Script& script);
  void advanceOps();
  void startSelection(double share);
  void maybeSendDone();
  bool idle() const;

  // -- timers / heartbeat --
  void heartbeatTick();
  int loopTimeoutMs() const;

  /// One event-loop iteration: epoll dispatch, due timers, heartbeat,
  /// script advance, coalesced flush. Shared by setup (mesh rendezvous)
  /// and run (steady state).
  void pollOnce(int timeout_ms);

  void sendCounts(std::uint32_t round);
  void sendSummary();

  NetRankConfig cfg_;
  rt::MonotonicClock clock_;
  Epoll epoll_;
  Fd listen_fd_;
  std::uint16_t listen_port_ = 0;
  Fd ctl_fd_;
  std::vector<std::uint8_t> ctl_out_;  ///< scratch for control frames
  std::vector<std::uint8_t> ctl_in_;
  std::vector<OutConn> out_;           ///< indexed by peer rank
  std::vector<std::unique_ptr<InConn>> in_;
  std::vector<std::uint16_t> peer_ports_;  ///< TCP mode, from kPeers
  rt::TimerWheel timers_;
  Rng fault_rng_;

  core::Mechanism* mech_ = nullptr;
  core::ProtocolAuditor* auditor_ = nullptr;

  // replay state
  std::vector<Op> ops_;
  std::size_t op_cursor_ = 0;
  bool go_received_ = false;
  double go_time_ = 0.0;
  bool advancing_ = false;  ///< re-entry guard: synchronous view callbacks
  bool sel_pending_ = false;
  bool done_sent_ = false;
  bool stop_received_ = false;
  bool supervisor_lost_ = false;
  std::int64_t committed_ = 0;
  std::int64_t skipped_ = 0;

  // failure detector state
  std::vector<double> last_rx_;
  std::vector<bool> suspected_;
  std::vector<bool> declared_dead_;
  double next_ping_deadline_ = 0.0;

  NetRunStats stats_;

  LOADEX_THREAD_CONFINED(confined_);  ///< everything runs on the loop thread
};

}  // namespace loadex::net
