// Versioned binary wire format of the real-socket transport.
//
// Every byte that crosses a kernel boundary goes through this file. A
// frame is length-prefixed so a stream socket can be cut at any byte
// without desynchronising the decoder:
//
//   [u32 body_len][u8 version][u8 FrameKind][u32 link_seq][body...]
//    \_ little-endian; body_len counts version..end of body
//
// `link_seq` numbers frames per directed connection starting at 1, so the
// receiver can assert wire-level FIFO contiguity independently of the
// protocol-level sequence numbers of the hardened increment stream.
//
// State-channel bodies are [u8 StateTag][per-tag fields]; the per-tag
// encoders/decoders dispatch exhaustively over core::StateTag — the
// loadex-lint `wirecodec-exhaustive` rule cross-checks both switch
// statements against the enum, so adding a tag without teaching the wire
// about it fails CI, not a live socket.
//
// All codecs are explicit little-endian via memcpy (no struct punning, no
// host-order assumptions), and the reader is bounds-checked: a truncated
// or garbage frame flips a sticky failure bit instead of reading past the
// buffer, and the caller drops the connection rather than guessing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/payloads.h"
#include "sim/message.h"

namespace loadex::net {

/// Schema version byte carried by every frame. Bump on any incompatible
/// layout change; tests/golden/wire_v1.bin pins the v1 byte layout.
inline constexpr std::uint8_t kWireVersion = 1;

/// Upper bound on a frame body. Anything larger is treated as a corrupt
/// or hostile length prefix (garbage rejection), not as a huge frame.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

/// Fixed header size: u32 length + u8 version + u8 kind + u32 link_seq.
inline constexpr std::size_t kFrameHeaderBytes = 10;

enum class FrameKind : std::uint8_t {
  // Supervisor control plane (rank <-> supervisor):
  kHello = 1,    ///< rank -> peer/supervisor: who am I (+ listen port)
  kPeers = 2,    ///< supervisor -> rank: everyone's TCP listen port
  kReady = 3,    ///< rank -> supervisor: mesh fully connected
  kGo = 4,       ///< supervisor -> rank: start replaying the script
  kDone = 5,     ///< rank -> supervisor: local script fully replayed
  kProbe = 6,    ///< supervisor -> rank: report quiescence counters
  kCounts = 7,   ///< rank -> supervisor: answer to kProbe
  kStop = 8,     ///< supervisor -> rank: finish audit, summarise, exit
  kSummary = 9,  ///< rank -> supervisor: final per-rank result record
  // Rank <-> rank data plane:
  kState = 10,   ///< mechanism state-channel message (StateTag body)
  kWork = 11,    ///< delegated application work (a master's share)
  kPing = 12,    ///< net-level heartbeat for the failure detector
};

const char* frameKindName(FrameKind k);

/// Append-only little-endian encoder over a caller-owned byte vector.
class WireWriter {
 public:
  explicit WireWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v) { putLe(v); }
  void u64(std::uint64_t v) { putLe(v); }
  void i64(std::int64_t v) { putLe(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    putLe(bits);
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }

 private:
  template <typename T>
  void putLe(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i)
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  std::vector<std::uint8_t>& out_;
};

/// Bounds-checked little-endian decoder. Reading past the end (a
/// truncated body) sets a sticky failure flag and yields zeros; callers
/// check ok() once at the end instead of after every field.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t len)
      : data_(data), len_(len) {}

  std::uint8_t u8() {
    if (!need(1)) return 0;
    return data_[pos_++];
  }
  std::uint32_t u32() { return getLe<std::uint32_t>(); }
  std::uint64_t u64() { return getLe<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (!need(n)) return {};
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  bool ok() const { return ok_; }
  bool atEnd() const { return ok_ && pos_ == len_; }
  std::size_t remaining() const { return len_ - pos_; }
  void fail() { ok_ = false; }

 private:
  bool need(std::size_t n) {
    if (!ok_ || len_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }
  template <typename T>
  T getLe() {
    if (!need(sizeof(T))) return T{0};
    T v{0};
    for (std::size_t i = 0; i < sizeof(T); ++i)
      v |= static_cast<T>(data_[pos_ + i]) << (8 * i);
    pos_ += sizeof(T);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// ---- framing -------------------------------------------------------------

/// Append a frame header to `buf` and return a builder whose finish()
/// patches the length prefix once the body has been written.
class FrameBuilder {
 public:
  FrameBuilder(std::vector<std::uint8_t>& buf, FrameKind kind,
               std::uint32_t link_seq);
  WireWriter& writer() { return writer_; }
  /// Patch the length prefix. Must be called exactly once.
  void finish();

 private:
  std::vector<std::uint8_t>& buf_;
  std::size_t len_offset_;
  WireWriter writer_;
  bool finished_ = false;
};

/// A decoded frame header plus a non-owning view of its body bytes.
struct FrameView {
  std::uint8_t version = 0;
  FrameKind kind = FrameKind::kPing;
  std::uint32_t link_seq = 0;
  const std::uint8_t* body = nullptr;
  std::size_t body_len = 0;
};

enum class DecodeStatus {
  kNeedMore,  ///< not enough buffered bytes for a whole frame yet
  kFrame,     ///< one frame decoded; `consumed` bytes may be discarded
  kBad,       ///< corrupt prefix (bad length/version/kind) — drop the link
};

/// Try to cut one frame off the front of a receive buffer. On kFrame,
/// `out` views into `data` (valid until the buffer is mutated) and
/// `consumed` is the total frame size including the length prefix.
DecodeStatus tryDecodeFrame(const std::uint8_t* data, std::size_t len,
                            FrameView& out, std::size_t& consumed);

// ---- state-channel payload codecs ---------------------------------------

/// Serialize a state payload body (tag byte included) for `tag`.
/// Dispatches exhaustively over core::StateTag.
void encodeStatePayload(core::StateTag tag, const sim::Payload& payload,
                        WireWriter& w);

/// Decode a state payload for `tag`; nullptr on malformed input (the
/// reader's failure flag is also set). Dispatches exhaustively over
/// core::StateTag.
std::shared_ptr<const sim::Payload> decodeStatePayload(core::StateTag tag,
                                                       WireReader& r);

/// The declared message size (the paper's Bytes accounting) of a payload,
/// recomputed at the receiver so it does not travel on the wire.
Bytes stateSizeBytes(core::StateTag tag, const sim::Payload& payload);

/// Decoded kState frame body.
struct StateFrame {
  core::StateTag tag = core::StateTag::kUpdateAbsolute;
  Bytes size = 0;
  std::shared_ptr<const sim::Payload> payload;
};

/// Encode a full kState body: [u8 tag][payload fields].
void encodeStateBody(core::StateTag tag, const sim::Payload& payload,
                     WireWriter& w);

/// Decode a kState body produced by encodeStateBody. Returns false (and
/// leaves `out` untouched) on malformed input.
bool decodeStateBody(WireReader& r, StateFrame& out);

}  // namespace loadex::net
