#include "net/launch.h"

#include <sys/stat.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <utility>

#include "common/expect.h"
#include "core/binding.h"
#include "net/socket.h"
#include "rt/clock.h"

namespace loadex::net {

namespace {

constexpr double kProbePeriodS = 2e-3;

/// Distinct run directories for concurrent supervisors in one process
/// tree (ctest -j runs several differential cases at once).
std::string makeRunDir() {
  static int counter = 0;
  const std::string dir = "/tmp/loadex_net." +
                          std::to_string(static_cast<long>(::getpid())) + "." +
                          std::to_string(++counter);
  ::mkdir(dir.c_str(), 0700);
  return dir;
}

void cleanupRunDir(const std::string& dir, int nprocs) {
  ::unlink(ctlSocketPath(dir).c_str());
  for (Rank r = 0; r < nprocs; ++r)
    ::unlink(rankSocketPath(dir, r).c_str());
  ::rmdir(dir.c_str());
}

/// Blocking read of one frame; false on EOF/error/timeout (SO_RCVTIMEO).
bool readFrameBlocking(int fd, std::vector<std::uint8_t>& frame,
                       FrameView& f) {
  std::uint8_t hdr[4];
  if (!readAll(fd, hdr, sizeof hdr)) return false;
  std::uint32_t body_len = 0;
  for (std::size_t i = 0; i < 4; ++i)
    body_len |= static_cast<std::uint32_t>(hdr[i]) << (8 * i);
  if (body_len < kFrameHeaderBytes - 4 || body_len > kMaxFrameBytes)
    return false;
  frame.assign(4 + body_len, 0);
  std::copy(hdr, hdr + 4, frame.begin());
  if (!readAll(fd, frame.data() + 4, body_len)) return false;
  std::size_t consumed = 0;
  return tryDecodeFrame(frame.data(), frame.size(), f, consumed) ==
         DecodeStatus::kFrame;
}

bool sendFrameBlocking(int fd, FrameKind kind,
                       const std::function<void(WireWriter&)>& body = {}) {
  std::vector<std::uint8_t> buf;
  FrameBuilder fb(buf, kind, 0);
  if (body) body(fb.writer());
  fb.finish();
  return writeAll(fd, buf.data(), buf.size());
}

void setRecvTimeout(int fd, double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<long>(seconds);
  tv.tv_usec = static_cast<long>((seconds - static_cast<double>(tv.tv_sec)) *
                                 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

struct ProbeCounts {
  bool idle = false;
  std::uint64_t sent = 0;
  std::uint64_t lost = 0;
  std::uint64_t delivered = 0;
  bool operator==(const ProbeCounts&) const = default;
};

bool parseSummary(const FrameView& f, NetRankResult& out) {
  WireReader r(f.body, f.body_len);
  out.rank = static_cast<Rank>(r.u32());
  out.committed = static_cast<std::int64_t>(r.u64());
  out.skipped = static_cast<std::int64_t>(r.u64());
  out.local_load.workload = r.f64();
  out.local_load.memory = r.f64();
  out.mech_messages_sent = static_cast<std::int64_t>(r.u64());
  out.net.state.posted = static_cast<std::int64_t>(r.u64());
  out.net.state.dropped = static_cast<std::int64_t>(r.u64());
  out.net.state.duplicated = static_cast<std::int64_t>(r.u64());
  out.net.state.delivered = static_cast<std::int64_t>(r.u64());
  out.net.work.posted = static_cast<std::int64_t>(r.u64());
  out.net.work.dropped = static_cast<std::int64_t>(r.u64());
  out.net.work.duplicated = static_cast<std::int64_t>(r.u64());
  out.net.work.delivered = static_cast<std::int64_t>(r.u64());
  out.net.frames_sent = static_cast<std::int64_t>(r.u64());
  out.net.frames_lost = static_cast<std::int64_t>(r.u64());
  out.net.frames_delivered = static_cast<std::int64_t>(r.u64());
  out.net.bytes_sent = static_cast<std::int64_t>(r.u64());
  out.net.bytes_received = static_cast<std::int64_t>(r.u64());
  out.net.flush_writes = static_cast<std::int64_t>(r.u64());
  out.net.flush_partials = static_cast<std::int64_t>(r.u64());
  out.net.reconnects = static_cast<std::int64_t>(r.u64());
  out.net.seq_violations = static_cast<std::int64_t>(r.u64());
  out.net.decode_errors = static_cast<std::int64_t>(r.u64());
  out.net.timers_fired = static_cast<std::int64_t>(r.u64());
  out.net.pings_sent = static_cast<std::int64_t>(r.u64());
  out.net.peers_suspected = static_cast<std::int64_t>(r.u64());
  out.audit_violations = static_cast<std::int64_t>(r.u64());
  out.first_violation = r.str();
  return r.ok();
}

}  // namespace

int runRankProcess(const NetRankConfig& cfg, const harness::Script& script) {
  NetWorld world(cfg);
  if (!world.setup()) {
    std::fprintf(stderr, "loadex_net rank %d: setup failed\n", cfg.self);
    return 3;
  }

  core::MechanismConfig mcfg;
  mcfg.threshold = {script.threshold, script.threshold};
  mcfg.reliability.reliable_updates = script.hardened;
  auto mech = core::makeMechanism(script.kind, world, mcfg);
  world.bind(mech.get());

  core::AuditorConfig acfg;
  acfg.allow_message_loss = cfg.opts.faults.enabled();
  core::ProtocolAuditor auditor(acfg);
  auditor.attachLocal(*mech, cfg.nprocs);

  return world.run(script, &auditor);
}

NetRunReport runMultiProcess(const harness::Script& script,
                             const NetOptions& opts) {
  NetRunReport report;
  const int nprocs = script.nprocs;
  LOADEX_EXPECT(nprocs >= 2, "multi-process run needs at least 2 ranks");

  const std::string dir = makeRunDir();
  Fd ctl_listen = listenUds(ctlSocketPath(dir));
  if (!ctl_listen.valid()) {
    report.error = "cannot listen on control socket in " + dir;
    return report;
  }
  setNonBlocking(ctl_listen.get());

  rt::MonotonicClock clock;
  std::vector<pid_t> pids(static_cast<std::size_t>(nprocs), -1);
  for (Rank r = 0; r < nprocs; ++r) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      ctl_listen.reset();
      NetRankConfig cfg;
      cfg.self = r;
      cfg.nprocs = nprocs;
      cfg.dir = dir;
      cfg.opts = opts;
      const int code = runRankProcess(cfg, script);
      // Never return into the forked caller (a test runner, a bench): no
      // atexit machinery, no duplicated output, just the verdict.
      ::_exit(code);
    }
    if (pid < 0) {
      report.error = "fork failed";
      break;
    }
    pids[static_cast<std::size_t>(r)] = pid;
  }

  std::vector<Fd> conn(static_cast<std::size_t>(nprocs));
  std::vector<std::uint32_t> ports(static_cast<std::size_t>(nprocs), 0);
  std::vector<std::uint8_t> frame;
  const double setup_deadline = clock.now() + opts.setup_timeout_s;

  // Accept + Hello: children connect in arbitrary order; the Hello names
  // the rank and, in TCP mode, its kernel-assigned listen port.
  int connected = 0;
  while (report.error.empty() && connected < nprocs) {
    if (clock.now() > setup_deadline) {
      report.error = "timeout waiting for rank Hello";
      break;
    }
    bool again = false;
    Fd fd = acceptOn(ctl_listen.get(), again);
    if (!fd.valid()) {
      rt::MonotonicClock::sleepFor(1e-3);
      continue;
    }
    setRecvTimeout(fd.get(), opts.run_timeout_s);
    FrameView f;
    if (!readFrameBlocking(fd.get(), frame, f) || f.kind != FrameKind::kHello) {
      report.error = "bad Hello from a child";
      break;
    }
    WireReader r(f.body, f.body_len);
    const auto rank = static_cast<Rank>(r.u32());
    const std::uint32_t port = r.u32();
    if (!r.ok() || rank < 0 || rank >= nprocs ||
        conn[static_cast<std::size_t>(rank)].valid()) {
      report.error = "invalid Hello rank";
      break;
    }
    ports[static_cast<std::size_t>(rank)] = port;
    conn[static_cast<std::size_t>(rank)] = std::move(fd);
    ++connected;
  }

  // Peers -> every rank, then collect Ready, then Go.
  for (Rank r = 0; report.error.empty() && r < nprocs; ++r) {
    if (!sendFrameBlocking(conn[static_cast<std::size_t>(r)].get(),
                           FrameKind::kPeers, [&](WireWriter& w) {
                             w.u32(static_cast<std::uint32_t>(nprocs));
                             for (const std::uint32_t p : ports) w.u32(p);
                           }))
      report.error = "cannot send Peers to rank " + std::to_string(r);
  }
  for (Rank r = 0; report.error.empty() && r < nprocs; ++r) {
    FrameView f;
    if (!readFrameBlocking(conn[static_cast<std::size_t>(r)].get(), frame,
                           f) ||
        f.kind != FrameKind::kReady)
      report.error = "rank " + std::to_string(r) + " never became Ready";
  }
  const double t_go = clock.now();
  for (Rank r = 0; report.error.empty() && r < nprocs; ++r) {
    if (!sendFrameBlocking(conn[static_cast<std::size_t>(r)].get(),
                           FrameKind::kGo))
      report.error = "cannot send Go to rank " + std::to_string(r);
  }

  // Every child replays its slice and reports Done.
  for (Rank r = 0; report.error.empty() && r < nprocs; ++r) {
    FrameView f;
    if (!readFrameBlocking(conn[static_cast<std::size_t>(r)].get(), frame,
                           f) ||
        f.kind != FrameKind::kDone)
      report.error = "rank " + std::to_string(r) + " never reported Done";
  }

  // Double-barrier quiescence: two consecutive probe rounds with every
  // rank idle, identical per-rank counters, and a closed global frame
  // ledger mean nothing is left in any kernel buffer.
  bool quiescent = false;
  std::vector<ProbeCounts> prev;
  const double run_deadline = clock.now() + opts.run_timeout_s;
  std::uint32_t round = 0;
  while (report.error.empty() && !quiescent) {
    if (clock.now() > run_deadline) {
      report.error = "quiescence timeout";
      break;
    }
    ++round;
    for (Rank r = 0; report.error.empty() && r < nprocs; ++r) {
      if (!sendFrameBlocking(conn[static_cast<std::size_t>(r)].get(),
                             FrameKind::kProbe,
                             [round](WireWriter& w) { w.u32(round); }))
        report.error = "cannot probe rank " + std::to_string(r);
    }
    std::vector<ProbeCounts> cur(static_cast<std::size_t>(nprocs));
    bool all_idle = true;
    std::uint64_t sent = 0, lost = 0, delivered = 0;
    for (Rank r = 0; report.error.empty() && r < nprocs; ++r) {
      FrameView f;
      if (!readFrameBlocking(conn[static_cast<std::size_t>(r)].get(), frame,
                             f) ||
          f.kind != FrameKind::kCounts) {
        report.error = "rank " + std::to_string(r) + " dropped mid-probe";
        break;
      }
      WireReader rd(f.body, f.body_len);
      (void)rd.u32();  // round echo
      ProbeCounts& c = cur[static_cast<std::size_t>(r)];
      c.idle = rd.u8() != 0;
      c.sent = rd.u64();
      c.lost = rd.u64();
      c.delivered = rd.u64();
      all_idle = all_idle && c.idle;
      sent += c.sent;
      lost += c.lost;
      delivered += c.delivered;
    }
    if (!report.error.empty()) break;
    quiescent = all_idle && sent - lost == delivered && cur == prev;
    prev = std::move(cur);
    report.probe_rounds = static_cast<int>(round);
    if (!quiescent) rt::MonotonicClock::sleepFor(kProbePeriodS);
  }
  report.wall_s = clock.now() - t_go;

  // Stop + Summary. Even on a supervisor-level error, try to stop the
  // children so they exit instead of hitting their own run timeout.
  report.ranks.resize(static_cast<std::size_t>(nprocs));
  for (Rank r = 0; r < nprocs; ++r) {
    if (!conn[static_cast<std::size_t>(r)].valid()) continue;
    sendFrameBlocking(conn[static_cast<std::size_t>(r)].get(),
                      FrameKind::kStop);
  }
  for (Rank r = 0; report.error.empty() && r < nprocs; ++r) {
    FrameView f;
    NetRankResult& res = report.ranks[static_cast<std::size_t>(r)];
    if (!readFrameBlocking(conn[static_cast<std::size_t>(r)].get(), frame,
                           f) ||
        f.kind != FrameKind::kSummary || !parseSummary(f, res) ||
        res.rank != r) {
      report.error = "bad Summary from rank " + std::to_string(r);
      break;
    }
  }

  bool children_clean = true;
  for (Rank r = 0; r < nprocs; ++r) {
    const pid_t pid = pids[static_cast<std::size_t>(r)];
    if (pid <= 0) continue;
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid) {
      children_clean = false;
      continue;
    }
    const int code =
        WIFEXITED(status) ? WEXITSTATUS(status) : 128 + WTERMSIG(status);
    report.ranks[static_cast<std::size_t>(r)].exit_code = code;
    children_clean = children_clean && code == 0;
  }

  for (const NetRankResult& res : report.ranks) {
    report.committed += res.committed;
    report.skipped += res.skipped;
    report.total_load += res.local_load;
    report.mech_messages_sent += res.mech_messages_sent;
    report.state.posted += res.net.state.posted;
    report.state.dropped += res.net.state.dropped;
    report.state.duplicated += res.net.state.duplicated;
    report.state.delivered += res.net.state.delivered;
    report.work.posted += res.net.work.posted;
    report.work.dropped += res.net.work.dropped;
    report.work.duplicated += res.net.work.duplicated;
    report.work.delivered += res.net.work.delivered;
    report.frames_sent += res.net.frames_sent;
    report.frames_lost += res.net.frames_lost;
    report.frames_delivered += res.net.frames_delivered;
    report.bytes_sent += res.net.bytes_sent;
    report.flush_writes += res.net.flush_writes;
    report.flush_partials += res.net.flush_partials;
    report.seq_violations += res.net.seq_violations;
    report.decode_errors += res.net.decode_errors;
    report.reconnects += res.net.reconnects;
    report.audit_violations += res.audit_violations;
  }

  cleanupRunDir(dir, nprocs);
  report.ok = report.error.empty() && quiescent && children_clean &&
              report.audit_violations == 0;
  if (!report.ok && report.error.empty())
    report.error = !children_clean ? "a rank process exited unclean"
                                   : "audit violations recorded";
  return report;
}

}  // namespace loadex::net
