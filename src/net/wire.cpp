#include "net/wire.h"

#include "common/expect.h"

namespace loadex::net {

const char* frameKindName(FrameKind k) {
  switch (k) {
    case FrameKind::kHello: return "hello";
    case FrameKind::kPeers: return "peers";
    case FrameKind::kReady: return "ready";
    case FrameKind::kGo: return "go";
    case FrameKind::kDone: return "done";
    case FrameKind::kProbe: return "probe";
    case FrameKind::kCounts: return "counts";
    case FrameKind::kStop: return "stop";
    case FrameKind::kSummary: return "summary";
    case FrameKind::kState: return "state";
    case FrameKind::kWork: return "work";
    case FrameKind::kPing: return "ping";
  }
  return "?";
}

namespace {

bool knownFrameKind(std::uint8_t k) {
  return k >= static_cast<std::uint8_t>(FrameKind::kHello) &&
         k <= static_cast<std::uint8_t>(FrameKind::kPing);
}

}  // namespace

FrameBuilder::FrameBuilder(std::vector<std::uint8_t>& buf, FrameKind kind,
                           std::uint32_t link_seq)
    : buf_(buf), len_offset_(buf.size()), writer_(buf) {
  writer_.u32(0);  // length placeholder, patched by finish()
  writer_.u8(kWireVersion);
  writer_.u8(static_cast<std::uint8_t>(kind));
  writer_.u32(link_seq);
}

void FrameBuilder::finish() {
  LOADEX_EXPECT(!finished_, "FrameBuilder::finish called twice");
  finished_ = true;
  const std::size_t body_len = buf_.size() - len_offset_ - 4;
  LOADEX_EXPECT(body_len <= kMaxFrameBytes, "frame body exceeds kMaxFrameBytes");
  const auto len = static_cast<std::uint32_t>(body_len);
  for (std::size_t i = 0; i < 4; ++i)
    buf_[len_offset_ + i] = static_cast<std::uint8_t>(len >> (8 * i));
}

DecodeStatus tryDecodeFrame(const std::uint8_t* data, std::size_t len,
                            FrameView& out, std::size_t& consumed) {
  if (len < 4) return DecodeStatus::kNeedMore;
  std::uint32_t body_len = 0;
  for (std::size_t i = 0; i < 4; ++i)
    body_len |= static_cast<std::uint32_t>(data[i]) << (8 * i);
  // The body always starts with version + kind + link_seq (6 bytes); a
  // shorter or absurdly long prefix cannot be a frame of any version.
  if (body_len < kFrameHeaderBytes - 4 || body_len > kMaxFrameBytes)
    return DecodeStatus::kBad;
  if (len < 4 + static_cast<std::size_t>(body_len))
    return DecodeStatus::kNeedMore;
  const std::uint8_t version = data[4];
  const std::uint8_t kind = data[5];
  if (version != kWireVersion || !knownFrameKind(kind))
    return DecodeStatus::kBad;
  out.version = version;
  out.kind = static_cast<FrameKind>(kind);
  out.link_seq = 0;
  for (std::size_t i = 0; i < 4; ++i)
    out.link_seq |= static_cast<std::uint32_t>(data[6 + i]) << (8 * i);
  out.body = data + kFrameHeaderBytes;
  out.body_len = body_len - (kFrameHeaderBytes - 4);
  consumed = 4 + static_cast<std::size_t>(body_len);
  return DecodeStatus::kFrame;
}

// ---- state-channel payload codecs ---------------------------------------

void encodeStatePayload(core::StateTag tag, const sim::Payload& payload,
                        WireWriter& w) {
  using core::StateTag;
  switch (tag) {
    case StateTag::kUpdateAbsolute: {
      const auto& p = core::payloadCast<core::UpdateAbsolutePayload>(payload);
      w.f64(p.load.workload);
      w.f64(p.load.memory);
      return;
    }
    case StateTag::kUpdateDelta: {
      const auto& p = core::payloadCast<core::UpdateDeltaPayload>(payload);
      w.f64(p.delta.workload);
      w.f64(p.delta.memory);
      w.u64(p.seq);
      return;
    }
    case StateTag::kMasterToAll: {
      const auto& p = core::payloadCast<core::MasterToAllPayload>(payload);
      w.u64(p.seq);
      w.u32(static_cast<std::uint32_t>(p.assignments.size()));
      for (const auto& a : p.assignments) {
        w.u32(static_cast<std::uint32_t>(a.slave));
        w.f64(a.share.workload);
        w.f64(a.share.memory);
      }
      return;
    }
    case StateTag::kNoMoreMaster:
      return;  // empty body
    case StateTag::kStartSnp: {
      const auto& p = core::payloadCast<core::StartSnpPayload>(payload);
      w.u64(p.request);
      return;
    }
    case StateTag::kSnp: {
      const auto& p = core::payloadCast<core::SnpPayload>(payload);
      w.u64(p.request);
      w.f64(p.state.workload);
      w.f64(p.state.memory);
      return;
    }
    case StateTag::kEndSnp:
      return;  // empty body
    case StateTag::kMasterToSlave: {
      const auto& p = core::payloadCast<core::MasterToSlavePayload>(payload);
      w.f64(p.share.workload);
      w.f64(p.share.memory);
      return;
    }
    case StateTag::kNack: {
      const auto& p = core::payloadCast<core::NackPayload>(payload);
      w.u64(p.from);
      w.u64(p.to);
      return;
    }
    case StateTag::kHeartbeat: {
      const auto& p = core::payloadCast<core::HeartbeatPayload>(payload);
      w.u64(p.last_seq);
      return;
    }
  }
  LOADEX_EXPECT(false, "encodeStatePayload: unknown StateTag");
}

std::shared_ptr<const sim::Payload> decodeStatePayload(core::StateTag tag,
                                                       WireReader& r) {
  using core::StateTag;
  switch (tag) {
    case StateTag::kUpdateAbsolute: {
      auto p = std::make_shared<core::UpdateAbsolutePayload>();
      p->load.workload = r.f64();
      p->load.memory = r.f64();
      return r.ok() ? p : nullptr;
    }
    case StateTag::kUpdateDelta: {
      auto p = std::make_shared<core::UpdateDeltaPayload>();
      p->delta.workload = r.f64();
      p->delta.memory = r.f64();
      p->seq = r.u64();
      return r.ok() ? p : nullptr;
    }
    case StateTag::kMasterToAll: {
      auto p = std::make_shared<core::MasterToAllPayload>();
      p->seq = r.u64();
      const std::uint32_t n = r.u32();
      // Each assignment is 20 bytes; an n the remaining bytes cannot hold
      // is a corrupt count, not a short read.
      if (!r.ok() || r.remaining() < static_cast<std::size_t>(n) * 20) {
        r.fail();
        return nullptr;
      }
      p->assignments.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        core::SlaveAssignment a;
        a.slave = static_cast<Rank>(r.u32());
        a.share.workload = r.f64();
        a.share.memory = r.f64();
        p->assignments.push_back(a);
      }
      return r.ok() ? p : nullptr;
    }
    case StateTag::kNoMoreMaster:
      return std::make_shared<core::NoMoreMasterPayload>();
    case StateTag::kStartSnp: {
      auto p = std::make_shared<core::StartSnpPayload>();
      p->request = r.u64();
      return r.ok() ? p : nullptr;
    }
    case StateTag::kSnp: {
      auto p = std::make_shared<core::SnpPayload>();
      p->request = r.u64();
      p->state.workload = r.f64();
      p->state.memory = r.f64();
      return r.ok() ? p : nullptr;
    }
    case StateTag::kEndSnp:
      return std::make_shared<core::EndSnpPayload>();
    case StateTag::kMasterToSlave: {
      auto p = std::make_shared<core::MasterToSlavePayload>();
      p->share.workload = r.f64();
      p->share.memory = r.f64();
      return r.ok() ? p : nullptr;
    }
    case StateTag::kNack: {
      auto p = std::make_shared<core::NackPayload>();
      p->from = r.u64();
      p->to = r.u64();
      return r.ok() ? p : nullptr;
    }
    case StateTag::kHeartbeat: {
      auto p = std::make_shared<core::HeartbeatPayload>();
      p->last_seq = r.u64();
      return r.ok() ? p : nullptr;
    }
  }
  r.fail();
  return nullptr;
}

Bytes stateSizeBytes(core::StateTag tag, const sim::Payload& payload) {
  using core::StateTag;
  switch (tag) {
    case StateTag::kUpdateAbsolute:
      return core::UpdateAbsolutePayload::sizeBytes();
    case StateTag::kUpdateDelta:
      return core::UpdateDeltaPayload::sizeBytes();
    case StateTag::kMasterToAll:
      return core::MasterToAllPayload::sizeBytes(
          core::payloadCast<core::MasterToAllPayload>(payload)
              .assignments.size());
    case StateTag::kNoMoreMaster:
      return core::NoMoreMasterPayload::sizeBytes();
    case StateTag::kStartSnp:
      return core::StartSnpPayload::sizeBytes();
    case StateTag::kSnp:
      return core::SnpPayload::sizeBytes();
    case StateTag::kEndSnp:
      return core::EndSnpPayload::sizeBytes();
    case StateTag::kMasterToSlave:
      return core::MasterToSlavePayload::sizeBytes();
    case StateTag::kNack:
      return core::NackPayload::sizeBytes();
    case StateTag::kHeartbeat:
      return core::HeartbeatPayload::sizeBytes();
  }
  LOADEX_EXPECT(false, "stateSizeBytes: unknown StateTag");
  return 0;
}

void encodeStateBody(core::StateTag tag, const sim::Payload& payload,
                     WireWriter& w) {
  w.u8(static_cast<std::uint8_t>(static_cast<int>(tag)));
  encodeStatePayload(tag, payload, w);
}

bool decodeStateBody(WireReader& r, StateFrame& out) {
  const std::uint8_t raw_tag = r.u8();
  if (!r.ok() || raw_tag < 1 ||
      raw_tag > static_cast<std::uint8_t>(
                    static_cast<int>(core::StateTag::kHeartbeat))) {
    r.fail();
    return false;
  }
  const auto tag = static_cast<core::StateTag>(raw_tag);
  auto payload = decodeStatePayload(tag, r);
  if (payload == nullptr || !r.atEnd()) {
    r.fail();
    return false;
  }
  out.tag = tag;
  out.payload = std::move(payload);
  out.size = stateSizeBytes(tag, *out.payload);
  return true;
}

}  // namespace loadex::net
