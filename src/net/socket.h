// Thin RAII layer over the raw socket and epoll syscalls.
//
// Every socket(2)/bind(2)/connect(2)/epoll_*(2) call in the repo lives in
// src/net — the loadex-lint `raw-socket` rule bans them everywhere else,
// so the rest of the codebase can only reach the kernel through the typed
// NetWorld/NetTransport seam. Errors surface as {-1, errno} style returns
// rather than exceptions: the event loop treats a failed peer socket as a
// connection-lifecycle event (reconnect with backoff), not a crash.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace loadex::net {

/// Move-only owning file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& o) noexcept : fd_(o.release()) {}
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.release();
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void reset();

 private:
  int fd_ = -1;
};

/// Put a descriptor into non-blocking mode. Returns false on error.
bool setNonBlocking(int fd);

// ---- listeners -----------------------------------------------------------

/// Bind + listen a TCP socket on 127.0.0.1:`port` (0 = kernel-assigned).
/// On success `bound_port` holds the actual port. Invalid Fd on error.
Fd listenTcp(std::uint16_t port, std::uint16_t& bound_port);

/// Bind + listen a Unix-domain stream socket at `path` (unlinked first).
Fd listenUds(const std::string& path);

/// Accept one pending connection (non-blocking listener): invalid Fd when
/// none is pending or on error; `again` distinguishes the two.
Fd acceptOn(int listen_fd, bool& again);

// ---- connectors ----------------------------------------------------------

/// Blocking connect to 127.0.0.1:`port`. Invalid Fd on error.
Fd connectTcp(std::uint16_t port);

/// Blocking connect to a Unix-domain socket path. Invalid Fd on error.
Fd connectUds(const std::string& path);

// ---- epoll ---------------------------------------------------------------

/// Owning epoll instance; a thin veneer so only this file names the
/// epoll_* syscalls.
class Epoll {
 public:
  Epoll();
  bool valid() const { return ep_.valid(); }

  /// Register/modify/remove `fd`. `want_write` adds EPOLLOUT interest on
  /// top of the always-on EPOLLIN. `token` comes back from wait().
  bool add(int fd, std::uint64_t token, bool want_write = false);
  bool mod(int fd, std::uint64_t token, bool want_write);
  void del(int fd);

  struct Event {
    std::uint64_t token = 0;
    bool readable = false;
    bool writable = false;
    bool error = false;  ///< EPOLLERR / EPOLLHUP / EPOLLRDHUP
  };

  /// Wait up to `timeout_ms` (-1 = forever, 0 = poll). Fills `events`
  /// (capacity `max_events`) and returns the count; -1 on error.
  int wait(Event* events, int max_events, int timeout_ms);

 private:
  Fd ep_;
};

// ---- raw stream I/O ------------------------------------------------------

enum class IoStatus { kOk, kWouldBlock, kClosed, kError };

/// One non-blocking write of up to `len` bytes; `n` holds bytes written.
IoStatus writeSome(int fd, const std::uint8_t* data, std::size_t len,
                   std::size_t& n);

/// One non-blocking read into `buf`; `n` holds bytes read. kClosed on
/// orderly EOF.
IoStatus readSome(int fd, std::uint8_t* buf, std::size_t cap, std::size_t& n);

/// Blocking write of the whole buffer (supervisor control plane only).
bool writeAll(int fd, const std::uint8_t* data, std::size_t len);

/// Blocking read of exactly `len` bytes (supervisor control plane only).
bool readAll(int fd, std::uint8_t* buf, std::size_t len);

}  // namespace loadex::net
