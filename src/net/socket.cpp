#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

namespace loadex::net {

void Fd::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

bool setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

Fd listenTcp(std::uint16_t port, std::uint16_t& bound_port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return {};
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
    return {};
  if (::listen(fd.get(), SOMAXCONN) != 0) return {};
  socklen_t len = sizeof addr;
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    return {};
  bound_port = ntohs(addr.sin_port);
  return fd;
}

Fd listenUds(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof addr.sun_path) return {};
  Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return {};
  ::unlink(path.c_str());
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
    return {};
  if (::listen(fd.get(), SOMAXCONN) != 0) return {};
  return fd;
}

Fd acceptOn(int listen_fd, bool& again) {
  again = false;
  const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
  if (fd >= 0) return Fd(fd);
  again = errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
  return {};
}

Fd connectTcp(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return {};
  const int one = 1;
  // Latency benches measure per-message round trips; Nagle would serialize
  // them behind delayed acks.
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
    return {};
  return fd;
}

Fd connectUds(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof addr.sun_path) return {};
  Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return {};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
    return {};
  return fd;
}

Epoll::Epoll() : ep_(::epoll_create1(EPOLL_CLOEXEC)) {}

namespace {
std::uint32_t interestOf(bool want_write) {
  std::uint32_t ev = EPOLLIN | EPOLLRDHUP;
  if (want_write) ev |= EPOLLOUT;
  return ev;
}
}  // namespace

bool Epoll::add(int fd, std::uint64_t token, bool want_write) {
  epoll_event ev{};
  ev.events = interestOf(want_write);
  ev.data.u64 = token;
  return ::epoll_ctl(ep_.get(), EPOLL_CTL_ADD, fd, &ev) == 0;
}

bool Epoll::mod(int fd, std::uint64_t token, bool want_write) {
  epoll_event ev{};
  ev.events = interestOf(want_write);
  ev.data.u64 = token;
  return ::epoll_ctl(ep_.get(), EPOLL_CTL_MOD, fd, &ev) == 0;
}

void Epoll::del(int fd) {
  ::epoll_ctl(ep_.get(), EPOLL_CTL_DEL, fd, nullptr);
}

int Epoll::wait(Event* events, int max_events, int timeout_ms) {
  epoll_event raw[64];
  if (max_events > 64) max_events = 64;
  const int n = ::epoll_wait(ep_.get(), raw, max_events, timeout_ms);
  if (n < 0) return errno == EINTR ? 0 : -1;
  for (int i = 0; i < n; ++i) {
    events[i].token = raw[i].data.u64;
    events[i].readable = (raw[i].events & EPOLLIN) != 0;
    events[i].writable = (raw[i].events & EPOLLOUT) != 0;
    events[i].error =
        (raw[i].events & (EPOLLERR | EPOLLHUP | EPOLLRDHUP)) != 0;
  }
  return n;
}

IoStatus writeSome(int fd, const std::uint8_t* data, std::size_t len,
                   std::size_t& n) {
  n = 0;
  const ssize_t r = ::send(fd, data, len, MSG_NOSIGNAL);
  if (r > 0) {
    n = static_cast<std::size_t>(r);
    return IoStatus::kOk;
  }
  if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR))
    return IoStatus::kWouldBlock;
  return IoStatus::kError;
}

IoStatus readSome(int fd, std::uint8_t* buf, std::size_t cap, std::size_t& n) {
  n = 0;
  const ssize_t r = ::recv(fd, buf, cap, 0);
  if (r > 0) {
    n = static_cast<std::size_t>(r);
    return IoStatus::kOk;
  }
  if (r == 0) return IoStatus::kClosed;
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
    return IoStatus::kWouldBlock;
  return IoStatus::kError;
}

bool writeAll(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t r = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (r > 0) {
      off += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool readAll(int fd, std::uint8_t* buf, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t r = ::recv(fd, buf + off, len - off, 0);
    if (r > 0) {
      off += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace loadex::net
