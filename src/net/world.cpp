#include "net/world.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/expect.h"
#include "obs/metrics.h"

namespace loadex::net {

namespace {

// epoll token encoding: high 32 bits = kind, low 32 bits = index.
constexpr std::uint64_t kTokListen = 1;
constexpr std::uint64_t kTokCtl = 2;
constexpr std::uint64_t kTokOut = 3;
constexpr std::uint64_t kTokIn = 4;

std::uint64_t tok(std::uint64_t kind, std::uint64_t idx) {
  return (kind << 32) | idx;
}
std::uint64_t tokKind(std::uint64_t t) { return t >> 32; }
std::uint32_t tokIdx(std::uint64_t t) {
  return static_cast<std::uint32_t>(t & 0xffffffffu);
}

constexpr double kConnectBackoffMinS = 1e-3;
constexpr double kConnectBackoffMaxS = 0.2;
constexpr double kBlockedSelectRetryS = 1e-4;

}  // namespace

const char* netTransportKindName(NetTransportKind k) {
  return k == NetTransportKind::kTcp ? "tcp" : "uds";
}

NetTransportKind parseNetTransportKind(const std::string& name) {
  if (name == "tcp") return NetTransportKind::kTcp;
  LOADEX_EXPECT(name == "uds", "unknown net transport: " + name);
  return NetTransportKind::kUds;
}

std::string ctlSocketPath(const std::string& dir) { return dir + "/ctl.sock"; }

std::string rankSocketPath(const std::string& dir, Rank r) {
  return dir + "/r" + std::to_string(r) + ".sock";
}

NetWorld::NetWorld(NetRankConfig cfg)
    : cfg_(std::move(cfg)),
      fault_rng_(cfg_.opts.faults.seed ^
                 (0x9e3779b97f4a7c15ull *
                  static_cast<std::uint64_t>(cfg_.self + 1))) {
  LOADEX_EXPECT(cfg_.nprocs >= 1 && cfg_.self >= 0 && cfg_.self < cfg_.nprocs,
                "bad net rank config");
  out_.resize(static_cast<std::size_t>(cfg_.nprocs));
  peer_ports_.assign(static_cast<std::size_t>(cfg_.nprocs), 0);
  last_rx_.assign(static_cast<std::size_t>(cfg_.nprocs), 0.0);
  suspected_.assign(static_cast<std::size_t>(cfg_.nprocs), false);
  declared_dead_.assign(static_cast<std::size_t>(cfg_.nprocs), false);
  timers_.bindToCurrentThread();
  confined_.bindToCurrentThread();
}

NetWorld::~NetWorld() = default;

// ---- connection lifecycle -------------------------------------------------

bool NetWorld::openListener() {
  if (cfg_.opts.transport == NetTransportKind::kTcp) {
    listen_fd_ = listenTcp(0, listen_port_);
  } else {
    listen_fd_ = listenUds(rankSocketPath(cfg_.dir, cfg_.self));
  }
  if (!listen_fd_.valid()) return false;
  if (!setNonBlocking(listen_fd_.get())) return false;
  return epoll_.add(listen_fd_.get(), tok(kTokListen, 0));
}

bool NetWorld::connectSupervisor() {
  const std::string path = ctlSocketPath(cfg_.dir);
  const double deadline = clock_.now() + cfg_.opts.setup_timeout_s;
  double backoff = kConnectBackoffMinS;
  while (clock_.now() < deadline) {
    ctl_fd_ = connectUds(path);
    if (ctl_fd_.valid()) return true;
    rt::MonotonicClock::sleepFor(backoff);
    backoff = std::min(2.0 * backoff, kConnectBackoffMaxS);
  }
  return false;
}

bool NetWorld::connectPeer(Rank r) {
  OutConn& c = out_[static_cast<std::size_t>(r)];
  LOADEX_EXPECT(!c.up, "connectPeer on a live connection");
  Fd fd = cfg_.opts.transport == NetTransportKind::kTcp
              ? connectTcp(peer_ports_[static_cast<std::size_t>(r)])
              : connectUds(rankSocketPath(cfg_.dir, r));
  if (!fd.valid()) return false;
  if (!setNonBlocking(fd.get())) return false;
  c.fd = std::move(fd);
  if (!epoll_.add(c.fd.get(), tok(kTokOut, static_cast<std::uint32_t>(r)))) {
    c.fd.reset();
    return false;
  }
  c.up = true;
  c.want_write = false;
  c.next_seq = 1;
  c.backoff_s = 0.0;
  // Identify ourselves so the acceptor can map this inbound stream to a
  // rank before any data frame arrives.
  enqueueFrame(r, FrameKind::kHello,
               [this](WireWriter& w) {
                 w.u32(static_cast<std::uint32_t>(cfg_.self));
                 w.u32(listen_port_);
               },
               /*count_mesh=*/true);
  flushConn(r);
  return true;
}

void NetWorld::onPeerDown(Rank r) {
  OutConn& c = out_[static_cast<std::size_t>(r)];
  if (!c.up) return;
  epoll_.del(c.fd.get());
  c.fd.reset();
  c.up = false;
  c.want_write = false;
  c.flush_pending = false;
  stats_.frames_lost += static_cast<std::int64_t>(c.buf_frames);
  c.buf.clear();
  c.buf_frames = 0;
  if (cfg_.opts.heartbeat.enabled() && !suspected_[static_cast<std::size_t>(r)]) {
    suspected_[static_cast<std::size_t>(r)] = true;
    ++stats_.peers_suspected;
    if (mech_ != nullptr) mech_->notePeerSuspect(r);
  }
  if (!stop_received_) armReconnect(r);
}

void NetWorld::armReconnect(Rank r) {
  OutConn& c = out_[static_cast<std::size_t>(r)];
  if (c.reconnect_armed) return;
  c.reconnect_armed = true;
  c.backoff_s = c.backoff_s <= 0.0 ? kConnectBackoffMinS
                                   : std::min(2.0 * c.backoff_s,
                                              kConnectBackoffMaxS);
  timers_.schedule(clock_.now(), c.backoff_s, [this, r] {
    OutConn& oc = out_[static_cast<std::size_t>(r)];
    oc.reconnect_armed = false;
    if (oc.up || stop_received_) return;
    if (connectPeer(r)) {
      ++stats_.reconnects;
      if (suspected_[static_cast<std::size_t>(r)]) {
        suspected_[static_cast<std::size_t>(r)] = false;
        if (mech_ != nullptr) mech_->notePeerAlive(r);
      }
    } else {
      armReconnect(r);
    }
  });
}

void NetWorld::acceptInbound() {
  for (;;) {
    bool again = false;
    Fd fd = acceptOn(listen_fd_.get(), again);
    if (!fd.valid()) return;  // again or error: either way, nothing to add
    if (!setNonBlocking(fd.get())) continue;
    auto conn = std::make_unique<InConn>();
    conn->fd = std::move(fd);
    const auto idx = static_cast<std::uint32_t>(in_.size());
    if (!epoll_.add(conn->fd.get(), tok(kTokIn, idx))) continue;
    in_.push_back(std::move(conn));
  }
}

// ---- frame I/O ------------------------------------------------------------

void NetWorld::enqueueFrame(Rank dst, FrameKind kind,
                            const std::function<void(WireWriter&)>& body,
                            bool count_mesh) {
  OutConn& c = out_[static_cast<std::size_t>(dst)];
  FrameBuilder fb(c.buf, kind, c.next_seq++);
  if (body) body(fb.writer());
  fb.finish();
  ++c.buf_frames;
  if (count_mesh) ++stats_.frames_sent;
  if (cfg_.opts.coalesce) {
    c.flush_pending = true;
  } else {
    flushConn(dst);
  }
}

void NetWorld::sendCtl(FrameKind kind,
                       const std::function<void(WireWriter&)>& body) {
  ctl_out_.clear();
  FrameBuilder fb(ctl_out_, kind, 0);
  if (body) body(fb.writer());
  fb.finish();
  // Control frames are tiny and the supervisor reads eagerly; spin through
  // transient EAGAIN instead of buffering a second outbound path.
  std::size_t off = 0;
  while (off < ctl_out_.size()) {
    std::size_t n = 0;
    const IoStatus st =
        writeSome(ctl_fd_.get(), ctl_out_.data() + off, ctl_out_.size() - off,
                  n);
    off += n;
    if (st == IoStatus::kWouldBlock) {
      rt::MonotonicClock::sleepFor(1e-5);
      continue;
    }
    if (st == IoStatus::kError || st == IoStatus::kClosed) return;
  }
}

void NetWorld::flushConn(Rank dst) {
  OutConn& c = out_[static_cast<std::size_t>(dst)];
  c.flush_pending = false;
  if (!c.up || c.buf.empty()) return;
  std::size_t off = 0;
  while (off < c.buf.size()) {
    std::size_t n = 0;
    const IoStatus st =
        writeSome(c.fd.get(), c.buf.data() + off, c.buf.size() - off, n);
    if (n > 0) {
      ++stats_.flush_writes;
      stats_.bytes_sent += static_cast<std::int64_t>(n);
      off += n;
    }
    if (st == IoStatus::kWouldBlock) {
      ++stats_.flush_partials;
      break;
    }
    if (st == IoStatus::kError || st == IoStatus::kClosed) {
      c.buf.erase(c.buf.begin(),
                  c.buf.begin() + static_cast<std::ptrdiff_t>(off));
      onPeerDown(dst);
      return;
    }
  }
  c.buf.erase(c.buf.begin(), c.buf.begin() + static_cast<std::ptrdiff_t>(off));
  if (c.buf.empty()) {
    c.buf_frames = 0;
    if (c.want_write) {
      c.want_write = false;
      epoll_.mod(c.fd.get(), tok(kTokOut, static_cast<std::uint32_t>(dst)),
                 false);
    }
  } else if (!c.want_write) {
    // Kernel buffer full mid-frame: let EPOLLOUT drive the rest out.
    c.want_write = true;
    epoll_.mod(c.fd.get(), tok(kTokOut, static_cast<std::uint32_t>(dst)),
               true);
  }
}

void NetWorld::flushPending() {
  for (Rank r = 0; r < cfg_.nprocs; ++r)
    if (out_[static_cast<std::size_t>(r)].flush_pending) flushConn(r);
}

void NetWorld::readConn(InConn& c) {
  std::uint8_t scratch[16384];
  for (;;) {
    std::size_t n = 0;
    const IoStatus st = readSome(c.fd.get(), scratch, sizeof scratch, n);
    if (n > 0) {
      stats_.bytes_received += static_cast<std::int64_t>(n);
      c.buf.insert(c.buf.end(), scratch, scratch + n);
    }
    if (st == IoStatus::kWouldBlock) break;
    if (st == IoStatus::kClosed || st == IoStatus::kError) {
      if (!drainFrames(c)) return;
      epoll_.del(c.fd.get());
      c.fd.reset();
      return;
    }
  }
  drainFrames(c);
}

/// Decode every complete frame buffered on `c`. Returns false if the
/// connection was torn down (corrupt stream).
bool NetWorld::drainFrames(InConn& c) {
  std::size_t pos = 0;
  for (;;) {
    FrameView f;
    std::size_t consumed = 0;
    const DecodeStatus st =
        tryDecodeFrame(c.buf.data() + pos, c.buf.size() - pos, f, consumed);
    if (st == DecodeStatus::kNeedMore) break;
    if (st == DecodeStatus::kBad) {
      ++stats_.decode_errors;
      if (c.fd.valid()) {
        epoll_.del(c.fd.get());
        c.fd.reset();
      }
      c.buf.clear();
      return false;
    }
    pos += consumed;
    if (f.link_seq != c.expect_seq) {
      ++stats_.seq_violations;
      c.expect_seq = f.link_seq;
    }
    ++c.expect_seq;
    handleMeshFrame(c, f);
  }
  c.buf.erase(c.buf.begin(), c.buf.begin() + static_cast<std::ptrdiff_t>(pos));
  return true;
}

void NetWorld::handleMeshFrame(const InConn& c, const FrameView& f) {
  // The Hello frame binds the stream to a rank; everything else needs it.
  if (f.kind == FrameKind::kHello) {
    WireReader r(f.body, f.body_len);
    const auto peer = static_cast<Rank>(r.u32());
    if (!r.ok() || peer < 0 || peer >= cfg_.nprocs) {
      ++stats_.decode_errors;
      return;
    }
    const_cast<InConn&>(c).peer = peer;
    ++stats_.frames_delivered;
    noteHeardFrom(peer);
    return;
  }
  if (c.peer == kNoRank) {
    ++stats_.decode_errors;  // data before Hello: protocol violation
    return;
  }
  noteHeardFrom(c.peer);
  switch (f.kind) {
    case FrameKind::kState: {
      WireReader r(f.body, f.body_len);
      StateFrame sf;
      if (!decodeStateBody(r, sf)) {
        ++stats_.decode_errors;
        return;
      }
      ++stats_.frames_delivered;
      ++stats_.state.delivered;
      if (mech_ == nullptr) return;
      sim::Message msg;
      msg.src = c.peer;
      msg.dst = cfg_.self;
      msg.channel = sim::Channel::kState;
      msg.tag = static_cast<int>(sf.tag);
      msg.size = sf.size;
      msg.payload = std::move(sf.payload);
      mech_->onStateMessage(msg);
      return;
    }
    case FrameKind::kWork: {
      WireReader r(f.body, f.body_len);
      core::LoadMetrics share;
      share.workload = r.f64();
      share.memory = r.f64();
      if (!r.atEnd()) {
        ++stats_.decode_errors;
        return;
      }
      ++stats_.frames_delivered;
      ++stats_.work.delivered;
      if (mech_ != nullptr) mech_->addLocalLoad(share, true);
      return;
    }
    case FrameKind::kPing:
      return;  // freshness only, counted by noteHeardFrom
    default:
      ++stats_.decode_errors;  // control frames never travel on the mesh
      return;
  }
}

void NetWorld::noteHeardFrom(Rank peer) {
  last_rx_[static_cast<std::size_t>(peer)] = clock_.now();
  if (suspected_[static_cast<std::size_t>(peer)]) {
    suspected_[static_cast<std::size_t>(peer)] = false;
    if (mech_ != nullptr) mech_->notePeerAlive(peer);
  }
}

void NetWorld::readCtl() {
  std::uint8_t scratch[4096];
  for (;;) {
    std::size_t n = 0;
    const IoStatus st = readSome(ctl_fd_.get(), scratch, sizeof scratch, n);
    if (n > 0) ctl_in_.insert(ctl_in_.end(), scratch, scratch + n);
    if (st == IoStatus::kWouldBlock) break;
    if (st == IoStatus::kClosed || st == IoStatus::kError) {
      // Supervisor gone: nothing sensible left to do in this process.
      stop_received_ = true;
      supervisor_lost_ = true;
      break;
    }
  }
  std::size_t pos = 0;
  for (;;) {
    FrameView f;
    std::size_t consumed = 0;
    const DecodeStatus st = tryDecodeFrame(ctl_in_.data() + pos,
                                           ctl_in_.size() - pos, f, consumed);
    if (st != DecodeStatus::kFrame) break;
    pos += consumed;
    handleCtlFrame(f);
  }
  ctl_in_.erase(ctl_in_.begin(),
                ctl_in_.begin() + static_cast<std::ptrdiff_t>(pos));
}

void NetWorld::handleCtlFrame(const FrameView& f) {
  switch (f.kind) {
    case FrameKind::kGo:
      go_received_ = true;
      go_time_ = clock_.now();
      if (cfg_.opts.heartbeat.enabled())
        next_ping_deadline_ = go_time_ + cfg_.opts.heartbeat.period_s;
      return;
    case FrameKind::kProbe: {
      WireReader r(f.body, f.body_len);
      sendCounts(r.u32());
      return;
    }
    case FrameKind::kStop:
      stop_received_ = true;
      return;
    default:
      return;  // late/unexpected control frames are ignored
  }
}

// ---- transport ------------------------------------------------------------

void NetWorld::sendState(Rank dst, core::StateTag tag, Bytes size,
                         std::shared_ptr<const sim::Payload> payload) {
  LOADEX_ASSERT_CONFINED(confined_);
  LOADEX_EXPECT(dst >= 0 && dst < cfg_.nprocs && dst != cfg_.self,
                "sendState to a bad destination");
  (void)size;  // recomputed from the payload at the receiver
  ++stats_.state.posted;
  int copies = 1;
  const FaultPlan& plan = cfg_.opts.faults;
  if (plan.enabled() && plan.affects_state) {
    const double t = clock_.now();
    bool blacked_out = false;
    for (const auto& b : plan.blackouts)
      blacked_out = blacked_out || b.matches(cfg_.self, dst, t);
    if (blacked_out || (plan.drop_prob > 0.0 &&
                        fault_rng_.bernoulli(plan.drop_prob))) {
      ++stats_.state.dropped;
      return;
    }
    if (plan.duplicate_prob > 0.0 &&
        fault_rng_.bernoulli(plan.duplicate_prob)) {
      ++stats_.state.duplicated;
      copies = 2;
    }
  }
  for (int i = 0; i < copies; ++i) {
    enqueueFrame(dst, FrameKind::kState,
                 [tag, &payload](WireWriter& w) {
                   encodeStateBody(tag, *payload, w);
                 },
                 /*count_mesh=*/true);
  }
}

void NetWorld::sendWork(Rank dst, const core::LoadMetrics& share) {
  LOADEX_ASSERT_CONFINED(confined_);
  ++stats_.work.posted;
  const FaultPlan& plan = cfg_.opts.faults;
  int copies = 1;
  if (plan.enabled() && plan.affects_app) {
    if (plan.drop_prob > 0.0 && fault_rng_.bernoulli(plan.drop_prob)) {
      ++stats_.work.dropped;
      return;
    }
    if (plan.duplicate_prob > 0.0 &&
        fault_rng_.bernoulli(plan.duplicate_prob)) {
      ++stats_.work.duplicated;
      copies = 2;
    }
  }
  for (int i = 0; i < copies; ++i) {
    enqueueFrame(dst, FrameKind::kWork,
                 [&share](WireWriter& w) {
                   w.f64(share.workload);
                   w.f64(share.memory);
                 },
                 /*count_mesh=*/true);
  }
}

void NetWorld::schedule(SimTime delay, std::function<void()> fn) {
  LOADEX_ASSERT_CONFINED(confined_);
  timers_.schedule(clock_.now(), delay, std::move(fn));
}

// ---- setup ----------------------------------------------------------------

bool NetWorld::setup() {
  if (!epoll_.valid()) return false;
  if (!openListener()) return false;
  if (!connectSupervisor()) return false;

  // Hello to the supervisor: rank + (TCP) listen port.
  {
    std::vector<std::uint8_t> buf;
    FrameBuilder fb(buf, FrameKind::kHello, 0);
    fb.writer().u32(static_cast<std::uint32_t>(cfg_.self));
    fb.writer().u32(listen_port_);
    fb.finish();
    if (!writeAll(ctl_fd_.get(), buf.data(), buf.size())) return false;
  }

  // Blocking wait for the port map (ctl is still in blocking mode here).
  {
    std::uint8_t hdr[4];
    if (!readAll(ctl_fd_.get(), hdr, sizeof hdr)) return false;
    std::uint32_t body_len = 0;
    for (std::size_t i = 0; i < 4; ++i)
      body_len |= static_cast<std::uint32_t>(hdr[i]) << (8 * i);
    if (body_len < kFrameHeaderBytes - 4 || body_len > kMaxFrameBytes)
      return false;
    std::vector<std::uint8_t> frame(4 + body_len);
    std::copy(hdr, hdr + 4, frame.begin());
    if (!readAll(ctl_fd_.get(), frame.data() + 4, body_len)) return false;
    FrameView f;
    std::size_t consumed = 0;
    if (tryDecodeFrame(frame.data(), frame.size(), f, consumed) !=
            DecodeStatus::kFrame ||
        f.kind != FrameKind::kPeers)
      return false;
    WireReader r(f.body, f.body_len);
    const std::uint32_t n = r.u32();
    if (n != static_cast<std::uint32_t>(cfg_.nprocs)) return false;
    for (std::uint32_t i = 0; i < n; ++i)
      peer_ports_[i] = static_cast<std::uint16_t>(r.u32());
    if (!r.ok()) return false;
  }

  // Full-mesh rendezvous: dial every peer (their listener may not exist
  // yet — retry with backoff) while accepting and identifying inbound
  // streams. Ready goes out only when both directions are complete.
  const double deadline = clock_.now() + cfg_.opts.setup_timeout_s;
  double backoff = kConnectBackoffMinS;
  for (;;) {
    bool all_out = true;
    for (Rank r = 0; r < cfg_.nprocs; ++r) {
      if (r == cfg_.self) continue;
      OutConn& c = out_[static_cast<std::size_t>(r)];
      if (!c.up && !connectPeer(r)) all_out = false;
    }
    int identified = 0;
    for (const auto& c : in_)
      if (c->peer != kNoRank) ++identified;
    if (all_out && identified >= cfg_.nprocs - 1) break;
    if (clock_.now() > deadline) return false;
    pollOnce(static_cast<int>(backoff * 1e3) + 1);
    backoff = std::min(2.0 * backoff, kConnectBackoffMaxS);
  }

  {
    std::vector<std::uint8_t> buf;
    FrameBuilder fb(buf, FrameKind::kReady, 0);
    fb.finish();
    if (!writeAll(ctl_fd_.get(), buf.data(), buf.size())) return false;
  }
  if (!setNonBlocking(ctl_fd_.get())) return false;
  return epoll_.add(ctl_fd_.get(), tok(kTokCtl, 0));
}

// ---- replay ---------------------------------------------------------------

void NetWorld::buildOps(const harness::Script& script) {
  for (const auto& op : script.loads)
    if (op.rank == cfg_.self)
      ops_.push_back({op.time, Op::Kind::kLoad, op.delta, 0.0});
  for (const auto& op : script.selections)
    if (op.master == cfg_.self)
      ops_.push_back({op.time, Op::Kind::kSelect, {}, op.share});
  if (script.no_more_master == cfg_.self)
    ops_.push_back(
        {script.no_more_master_at, Op::Kind::kNoMoreMaster, {}, 0.0});
  std::stable_sort(ops_.begin(), ops_.end(),
                   [](const Op& a, const Op& b) { return a.time < b.time; });
}

void NetWorld::advanceOps() {
  if (advancing_ || !go_received_ || stop_received_) return;
  advancing_ = true;
  while (op_cursor_ < ops_.size()) {
    const Op& op = ops_[op_cursor_];
    if (cfg_.opts.time_scale > 0.0 &&
        clock_.now() - go_time_ < op.time * cfg_.opts.time_scale)
      break;
    if (op.kind == Op::Kind::kSelect) {
      if (sel_pending_) break;
      if (mech_->blocksComputation()) {
        // Frozen by a snapshot: retry once the freeze lifts. The timer
        // keeps the wheel pending, so quiescence waits for this op.
        timers_.schedule(clock_.now(), kBlockedSelectRetryS,
                         [this] { advanceOps(); });
        break;
      }
      const double share = op.share;
      ++op_cursor_;
      startSelection(share);
      continue;
    }
    if (op.kind == Op::Kind::kLoad) {
      mech_->addLocalLoad(op.delta, false);
    } else {
      mech_->noMoreMaster();
    }
    ++op_cursor_;
  }
  advancing_ = false;
  maybeSendDone();
}

void NetWorld::startSelection(double share) {
  sel_pending_ = true;
  mech_->requestView([this, share](const core::LoadView& view) {
    const Rank slave = harness::leastLoadedSlave(view, cfg_.self);
    if (slave == kNoRank) {
      ++skipped_;
      mech_->commitSelection({});
    } else {
      ++committed_;
      const core::LoadMetrics assigned{share, 0.0};
      mech_->commitSelection({{slave, assigned}});
      sendWork(slave, assigned);
    }
    sel_pending_ = false;
    advanceOps();
  });
}

void NetWorld::maybeSendDone() {
  if (done_sent_ || op_cursor_ < ops_.size() || sel_pending_) return;
  done_sent_ = true;
  sendCtl(FrameKind::kDone);
}

bool NetWorld::idle() const {
  if (!done_sent_ || sel_pending_ || timers_.pending() != 0) return false;
  for (const auto& c : out_)
    if (!c.buf.empty()) return false;
  return true;
}

// ---- heartbeat ------------------------------------------------------------

void NetWorld::heartbeatTick() {
  const NetHeartbeatConfig& hb = cfg_.opts.heartbeat;
  const double now = clock_.now();
  next_ping_deadline_ = now + hb.period_s;
  for (Rank r = 0; r < cfg_.nprocs; ++r) {
    if (r == cfg_.self) continue;
    const auto i = static_cast<std::size_t>(r);
    const double silent =
        now - std::max(last_rx_[i], go_time_);
    if (hb.dead_after_s > 0.0 && silent > hb.dead_after_s) {
      if (!declared_dead_[i]) {
        declared_dead_[i] = true;
        if (mech_ != nullptr) mech_->notePeerDead(r);
      }
    } else if (hb.suspect_after_s > 0.0 && silent > hb.suspect_after_s) {
      if (!suspected_[i] && !declared_dead_[i]) {
        suspected_[i] = true;
        ++stats_.peers_suspected;
        if (mech_ != nullptr) mech_->notePeerSuspect(r);
      }
    }
    if (out_[i].up) {
      ++stats_.pings_sent;
      enqueueFrame(r, FrameKind::kPing, {}, /*count_mesh=*/false);
    }
  }
}

// ---- event loop -----------------------------------------------------------

int NetWorld::loopTimeoutMs() const {
  double wait_s = 0.05;
  const double now = clock_.now();
  const double next_timer = timers_.nextDeadline();
  if (next_timer < now + wait_s) wait_s = std::max(next_timer - now, 0.0);
  if (cfg_.opts.heartbeat.enabled() && go_received_) {
    const double hb = next_ping_deadline_ - now;
    if (hb < wait_s) wait_s = std::max(hb, 0.0);
  }
  if (cfg_.opts.time_scale > 0.0 && go_received_ &&
      op_cursor_ < ops_.size()) {
    const double op =
        go_time_ + ops_[op_cursor_].time * cfg_.opts.time_scale - now;
    if (op < wait_s) wait_s = std::max(op, 0.0);
  }
  return static_cast<int>(wait_s * 1e3) + (wait_s > 0.0 ? 1 : 0);
}

void NetWorld::pollOnce(int timeout_ms) {
  Epoll::Event evs[64];
  const int n = epoll_.wait(evs, 64, timeout_ms);
  for (int i = 0; i < n; ++i) {
    const std::uint64_t t = evs[i].token;
    switch (tokKind(t)) {
      case kTokListen:
        acceptInbound();
        break;
      case kTokCtl:
        if (evs[i].readable || evs[i].error) readCtl();
        break;
      case kTokOut: {
        const Rank r = static_cast<Rank>(tokIdx(t));
        if (evs[i].error) {
          onPeerDown(r);
        } else if (evs[i].writable) {
          flushConn(r);
        }
        break;
      }
      case kTokIn: {
        const auto idx = tokIdx(t);
        if (idx < in_.size() && in_[idx]->fd.valid()) readConn(*in_[idx]);
        break;
      }
      default:
        break;
    }
  }
  stats_.timers_fired += timers_.fireDue(clock_.now());
  if (cfg_.opts.heartbeat.enabled() && go_received_ && !stop_received_ &&
      clock_.now() >= next_ping_deadline_)
    heartbeatTick();
  advanceOps();
  flushPending();
}

int NetWorld::run(const harness::Script& script,
                  core::ProtocolAuditor* auditor) {
  LOADEX_EXPECT(mech_ != nullptr, "NetWorld::run without a bound mechanism");
  auditor_ = auditor;
  buildOps(script);
  const double deadline = clock_.now() + cfg_.opts.run_timeout_s;
  while (!stop_received_) {
    if (clock_.now() > deadline) {
      std::fprintf(stderr, "loadex_net rank %d: run timeout\n", cfg_.self);
      return 2;
    }
    pollOnce(loopTimeoutMs());
  }
  // Push out anything still buffered so peers that have not stopped yet
  // observe a complete stream, then settle the audit and report.
  flushPending();
  bool audit_clean = true;
  if (auditor_ != nullptr) {
    auditor_->finish();
    audit_clean = auditor_->clean();
  }
  LOADEX_METRIC(counter("net/bytes_sent").add(stats_.bytes_sent));
  LOADEX_METRIC(counter("net/bytes_received").add(stats_.bytes_received));
  LOADEX_METRIC(counter("net/flush_writes").add(stats_.flush_writes));
  LOADEX_METRIC(counter("net/frames_sent").add(stats_.frames_sent));
  if (!supervisor_lost_) sendSummary();
  return audit_clean ? 0 : 1;
}

void NetWorld::sendCounts(std::uint32_t round) {
  sendCtl(FrameKind::kCounts, [this, round](WireWriter& w) {
    w.u32(round);
    w.u8(idle() ? 1 : 0);
    w.u64(static_cast<std::uint64_t>(stats_.frames_sent));
    w.u64(static_cast<std::uint64_t>(stats_.frames_lost));
    w.u64(static_cast<std::uint64_t>(stats_.frames_delivered));
  });
}

void NetWorld::sendSummary() {
  const core::MechanismStats& ms = mech_->stats();
  const core::LoadMetrics& load = mech_->localLoad();
  std::string first_violation;
  std::uint64_t violations = 0;
  if (auditor_ != nullptr) {
    violations = static_cast<std::uint64_t>(auditor_->violations().size());
    if (!auditor_->violations().empty())
      first_violation = auditor_->violations().front().substr(0, 200);
  }
  sendCtl(FrameKind::kSummary, [&](WireWriter& w) {
    w.u32(static_cast<std::uint32_t>(cfg_.self));
    w.u64(static_cast<std::uint64_t>(committed_));
    w.u64(static_cast<std::uint64_t>(skipped_));
    w.f64(load.workload);
    w.f64(load.memory);
    w.u64(static_cast<std::uint64_t>(ms.messagesSent()));
    w.u64(static_cast<std::uint64_t>(stats_.state.posted));
    w.u64(static_cast<std::uint64_t>(stats_.state.dropped));
    w.u64(static_cast<std::uint64_t>(stats_.state.duplicated));
    w.u64(static_cast<std::uint64_t>(stats_.state.delivered));
    w.u64(static_cast<std::uint64_t>(stats_.work.posted));
    w.u64(static_cast<std::uint64_t>(stats_.work.dropped));
    w.u64(static_cast<std::uint64_t>(stats_.work.duplicated));
    w.u64(static_cast<std::uint64_t>(stats_.work.delivered));
    w.u64(static_cast<std::uint64_t>(stats_.frames_sent));
    w.u64(static_cast<std::uint64_t>(stats_.frames_lost));
    w.u64(static_cast<std::uint64_t>(stats_.frames_delivered));
    w.u64(static_cast<std::uint64_t>(stats_.bytes_sent));
    w.u64(static_cast<std::uint64_t>(stats_.bytes_received));
    w.u64(static_cast<std::uint64_t>(stats_.flush_writes));
    w.u64(static_cast<std::uint64_t>(stats_.flush_partials));
    w.u64(static_cast<std::uint64_t>(stats_.reconnects));
    w.u64(static_cast<std::uint64_t>(stats_.seq_violations));
    w.u64(static_cast<std::uint64_t>(stats_.decode_errors));
    w.u64(static_cast<std::uint64_t>(stats_.timers_fired));
    w.u64(static_cast<std::uint64_t>(stats_.pings_sent));
    w.u64(static_cast<std::uint64_t>(stats_.peers_suspected));
    w.u64(violations);
    w.str(first_violation);
  });
}

}  // namespace loadex::net
