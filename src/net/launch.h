// Multi-process launcher: fork N rank processes, supervise the run.
//
// The calling process becomes the supervisor: it listens on a Unix-domain
// control socket inside a per-run directory, forks one child per rank
// (plain fork, no exec — children inherit the Script and options by
// memory), then drives the barrier protocol over net/wire.h control
// frames:
//
//   child -> Hello{rank, tcp_port}      supervisor -> Peers{ports}
//   child -> Ready (mesh connected)     supervisor -> Go
//   child -> Done  (script replayed)    supervisor -> Probe{round}
//   child -> Counts{idle, sent, lost, delivered}   ... until quiescent
//   supervisor -> Stop                  child -> Summary{...}, exit
//
// Quiescence is a double barrier: two consecutive probe rounds must
// report every rank idle (ops done, no pending view, no armed timer,
// empty outbound buffers) with identical counters and a globally closed
// ledger (frames sent - frames lost == frames delivered). Only then can
// no message still be in flight in a kernel buffer, so Stop cannot cut a
// protocol exchange in half.
//
// The per-rank Summary frames carry each child's mechanism stats, local
// load, channel counters and audit verdict; the supervisor folds them
// into a NetRunReport whose conservation identity
// (posted + duplicated == delivered + dropped, per channel) is the
// acceptance claim of the process-level differential.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/load.h"
#include "harness/script.h"
#include "net/world.h"

namespace loadex::net {

/// One child's Summary, plus its exit status.
struct NetRankResult {
  Rank rank = kNoRank;
  std::int64_t committed = 0;
  std::int64_t skipped = 0;
  core::LoadMetrics local_load;
  std::int64_t mech_messages_sent = 0;
  NetRunStats net;
  std::int64_t audit_violations = 0;
  std::string first_violation;
  int exit_code = -1;
};

struct NetRunReport {
  bool ok = false;       ///< quiesced, every child exited 0, audits clean
  std::string error;     ///< first supervisor-level failure, empty if ok
  double wall_s = 0.0;   ///< Go -> quiescence, supervisor clock
  int probe_rounds = 0;

  // Sums over all ranks:
  std::int64_t committed = 0;
  std::int64_t skipped = 0;
  core::LoadMetrics total_load;
  std::int64_t mech_messages_sent = 0;
  NetChannelCounters state;
  NetChannelCounters work;
  std::int64_t frames_sent = 0;
  std::int64_t frames_lost = 0;
  std::int64_t frames_delivered = 0;
  std::int64_t bytes_sent = 0;
  std::int64_t flush_writes = 0;
  std::int64_t flush_partials = 0;
  std::int64_t seq_violations = 0;
  std::int64_t decode_errors = 0;
  std::int64_t reconnects = 0;
  std::int64_t audit_violations = 0;

  std::vector<NetRankResult> ranks;

  /// The cross-process conservation identity, per channel.
  bool conservationHolds() const {
    return state.posted + state.duplicated == state.delivered + state.dropped &&
           work.posted + work.duplicated == work.delivered + work.dropped;
  }
};

/// Fork script.nprocs rank processes and supervise them to quiescence.
/// Blocks until every child has exited; safe to call from a test (the
/// children never return into the caller — they _exit after Summary).
NetRunReport runMultiProcess(const harness::Script& script,
                             const NetOptions& opts);

/// Body of one rank process: build the NetWorld, the mechanism and the
/// rank-local auditor, run to Stop. Returns the process exit code
/// (0 clean, 1 audit violations, 2 timeout, 3 setup failure).
int runRankProcess(const NetRankConfig& cfg, const harness::Script& script);

}  // namespace loadex::net
