file(REMOVE_RECURSE
  "CMakeFiles/snapshot_demo.dir/snapshot_demo.cpp.o"
  "CMakeFiles/snapshot_demo.dir/snapshot_demo.cpp.o.d"
  "snapshot_demo"
  "snapshot_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
