# Empty compiler generated dependencies file for snapshot_demo.
# This may be replaced when dependencies are built.
