file(REMOVE_RECURSE
  "CMakeFiles/tree_explorer.dir/tree_explorer.cpp.o"
  "CMakeFiles/tree_explorer.dir/tree_explorer.cpp.o.d"
  "tree_explorer"
  "tree_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
