# Empty dependencies file for workload_scheduling.
# This may be replaced when dependencies are built.
