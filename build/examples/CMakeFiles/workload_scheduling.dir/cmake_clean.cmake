file(REMOVE_RECURSE
  "CMakeFiles/workload_scheduling.dir/workload_scheduling.cpp.o"
  "CMakeFiles/workload_scheduling.dir/workload_scheduling.cpp.o.d"
  "workload_scheduling"
  "workload_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
