# Empty dependencies file for memory_scheduling.
# This may be replaced when dependencies are built.
