file(REMOVE_RECURSE
  "CMakeFiles/memory_scheduling.dir/memory_scheduling.cpp.o"
  "CMakeFiles/memory_scheduling.dir/memory_scheduling.cpp.o.d"
  "memory_scheduling"
  "memory_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
