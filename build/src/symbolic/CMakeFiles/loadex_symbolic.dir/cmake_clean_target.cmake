file(REMOVE_RECURSE
  "libloadex_symbolic.a"
)
