# Empty compiler generated dependencies file for loadex_symbolic.
# This may be replaced when dependencies are built.
