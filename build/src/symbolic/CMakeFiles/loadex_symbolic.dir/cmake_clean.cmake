file(REMOVE_RECURSE
  "CMakeFiles/loadex_symbolic.dir/analysis.cpp.o"
  "CMakeFiles/loadex_symbolic.dir/analysis.cpp.o.d"
  "CMakeFiles/loadex_symbolic.dir/assembly_tree.cpp.o"
  "CMakeFiles/loadex_symbolic.dir/assembly_tree.cpp.o.d"
  "CMakeFiles/loadex_symbolic.dir/etree.cpp.o"
  "CMakeFiles/loadex_symbolic.dir/etree.cpp.o.d"
  "libloadex_symbolic.a"
  "libloadex_symbolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loadex_symbolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
