
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/symbolic/analysis.cpp" "src/symbolic/CMakeFiles/loadex_symbolic.dir/analysis.cpp.o" "gcc" "src/symbolic/CMakeFiles/loadex_symbolic.dir/analysis.cpp.o.d"
  "/root/repo/src/symbolic/assembly_tree.cpp" "src/symbolic/CMakeFiles/loadex_symbolic.dir/assembly_tree.cpp.o" "gcc" "src/symbolic/CMakeFiles/loadex_symbolic.dir/assembly_tree.cpp.o.d"
  "/root/repo/src/symbolic/etree.cpp" "src/symbolic/CMakeFiles/loadex_symbolic.dir/etree.cpp.o" "gcc" "src/symbolic/CMakeFiles/loadex_symbolic.dir/etree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparse/CMakeFiles/loadex_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/loadex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
