# Empty dependencies file for loadex_symbolic.
# This may be replaced when dependencies are built.
