file(REMOVE_RECURSE
  "libloadex_solver.a"
)
