file(REMOVE_RECURSE
  "CMakeFiles/loadex_solver.dir/factor_app.cpp.o"
  "CMakeFiles/loadex_solver.dir/factor_app.cpp.o.d"
  "CMakeFiles/loadex_solver.dir/mapping.cpp.o"
  "CMakeFiles/loadex_solver.dir/mapping.cpp.o.d"
  "CMakeFiles/loadex_solver.dir/runner.cpp.o"
  "CMakeFiles/loadex_solver.dir/runner.cpp.o.d"
  "CMakeFiles/loadex_solver.dir/schedulers.cpp.o"
  "CMakeFiles/loadex_solver.dir/schedulers.cpp.o.d"
  "libloadex_solver.a"
  "libloadex_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loadex_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
