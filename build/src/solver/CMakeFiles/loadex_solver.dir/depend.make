# Empty dependencies file for loadex_solver.
# This may be replaced when dependencies are built.
