file(REMOVE_RECURSE
  "CMakeFiles/loadex_sparse.dir/generators.cpp.o"
  "CMakeFiles/loadex_sparse.dir/generators.cpp.o.d"
  "CMakeFiles/loadex_sparse.dir/matrix_market.cpp.o"
  "CMakeFiles/loadex_sparse.dir/matrix_market.cpp.o.d"
  "CMakeFiles/loadex_sparse.dir/pattern.cpp.o"
  "CMakeFiles/loadex_sparse.dir/pattern.cpp.o.d"
  "libloadex_sparse.a"
  "libloadex_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loadex_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
