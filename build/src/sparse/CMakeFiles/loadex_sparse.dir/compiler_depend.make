# Empty compiler generated dependencies file for loadex_sparse.
# This may be replaced when dependencies are built.
