file(REMOVE_RECURSE
  "libloadex_sparse.a"
)
