file(REMOVE_RECURSE
  "CMakeFiles/loadex_core.dir/binding.cpp.o"
  "CMakeFiles/loadex_core.dir/binding.cpp.o.d"
  "CMakeFiles/loadex_core.dir/increment.cpp.o"
  "CMakeFiles/loadex_core.dir/increment.cpp.o.d"
  "CMakeFiles/loadex_core.dir/mechanism.cpp.o"
  "CMakeFiles/loadex_core.dir/mechanism.cpp.o.d"
  "CMakeFiles/loadex_core.dir/naive.cpp.o"
  "CMakeFiles/loadex_core.dir/naive.cpp.o.d"
  "CMakeFiles/loadex_core.dir/snapshot.cpp.o"
  "CMakeFiles/loadex_core.dir/snapshot.cpp.o.d"
  "libloadex_core.a"
  "libloadex_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loadex_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
