# Empty compiler generated dependencies file for loadex_core.
# This may be replaced when dependencies are built.
