file(REMOVE_RECURSE
  "libloadex_core.a"
)
