
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/binding.cpp" "src/core/CMakeFiles/loadex_core.dir/binding.cpp.o" "gcc" "src/core/CMakeFiles/loadex_core.dir/binding.cpp.o.d"
  "/root/repo/src/core/increment.cpp" "src/core/CMakeFiles/loadex_core.dir/increment.cpp.o" "gcc" "src/core/CMakeFiles/loadex_core.dir/increment.cpp.o.d"
  "/root/repo/src/core/mechanism.cpp" "src/core/CMakeFiles/loadex_core.dir/mechanism.cpp.o" "gcc" "src/core/CMakeFiles/loadex_core.dir/mechanism.cpp.o.d"
  "/root/repo/src/core/naive.cpp" "src/core/CMakeFiles/loadex_core.dir/naive.cpp.o" "gcc" "src/core/CMakeFiles/loadex_core.dir/naive.cpp.o.d"
  "/root/repo/src/core/snapshot.cpp" "src/core/CMakeFiles/loadex_core.dir/snapshot.cpp.o" "gcc" "src/core/CMakeFiles/loadex_core.dir/snapshot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/loadex_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/loadex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
