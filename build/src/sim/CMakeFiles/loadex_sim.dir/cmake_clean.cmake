file(REMOVE_RECURSE
  "CMakeFiles/loadex_sim.dir/event_queue.cpp.o"
  "CMakeFiles/loadex_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/loadex_sim.dir/network.cpp.o"
  "CMakeFiles/loadex_sim.dir/network.cpp.o.d"
  "CMakeFiles/loadex_sim.dir/process.cpp.o"
  "CMakeFiles/loadex_sim.dir/process.cpp.o.d"
  "CMakeFiles/loadex_sim.dir/world.cpp.o"
  "CMakeFiles/loadex_sim.dir/world.cpp.o.d"
  "libloadex_sim.a"
  "libloadex_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loadex_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
