# Empty compiler generated dependencies file for loadex_sim.
# This may be replaced when dependencies are built.
