file(REMOVE_RECURSE
  "libloadex_sim.a"
)
