# Empty compiler generated dependencies file for loadex_common.
# This may be replaced when dependencies are built.
