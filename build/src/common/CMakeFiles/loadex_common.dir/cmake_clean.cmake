file(REMOVE_RECURSE
  "CMakeFiles/loadex_common.dir/cli.cpp.o"
  "CMakeFiles/loadex_common.dir/cli.cpp.o.d"
  "CMakeFiles/loadex_common.dir/expect.cpp.o"
  "CMakeFiles/loadex_common.dir/expect.cpp.o.d"
  "CMakeFiles/loadex_common.dir/log.cpp.o"
  "CMakeFiles/loadex_common.dir/log.cpp.o.d"
  "CMakeFiles/loadex_common.dir/rng.cpp.o"
  "CMakeFiles/loadex_common.dir/rng.cpp.o.d"
  "CMakeFiles/loadex_common.dir/stats.cpp.o"
  "CMakeFiles/loadex_common.dir/stats.cpp.o.d"
  "CMakeFiles/loadex_common.dir/table.cpp.o"
  "CMakeFiles/loadex_common.dir/table.cpp.o.d"
  "libloadex_common.a"
  "libloadex_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loadex_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
