file(REMOVE_RECURSE
  "libloadex_common.a"
)
