
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ordering/min_degree.cpp" "src/ordering/CMakeFiles/loadex_ordering.dir/min_degree.cpp.o" "gcc" "src/ordering/CMakeFiles/loadex_ordering.dir/min_degree.cpp.o.d"
  "/root/repo/src/ordering/nested_dissection.cpp" "src/ordering/CMakeFiles/loadex_ordering.dir/nested_dissection.cpp.o" "gcc" "src/ordering/CMakeFiles/loadex_ordering.dir/nested_dissection.cpp.o.d"
  "/root/repo/src/ordering/rcm.cpp" "src/ordering/CMakeFiles/loadex_ordering.dir/rcm.cpp.o" "gcc" "src/ordering/CMakeFiles/loadex_ordering.dir/rcm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparse/CMakeFiles/loadex_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/loadex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
