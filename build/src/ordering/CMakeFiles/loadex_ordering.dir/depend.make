# Empty dependencies file for loadex_ordering.
# This may be replaced when dependencies are built.
