# Empty compiler generated dependencies file for loadex_ordering.
# This may be replaced when dependencies are built.
