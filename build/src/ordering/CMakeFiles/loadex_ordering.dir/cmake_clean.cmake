file(REMOVE_RECURSE
  "CMakeFiles/loadex_ordering.dir/min_degree.cpp.o"
  "CMakeFiles/loadex_ordering.dir/min_degree.cpp.o.d"
  "CMakeFiles/loadex_ordering.dir/nested_dissection.cpp.o"
  "CMakeFiles/loadex_ordering.dir/nested_dissection.cpp.o.d"
  "CMakeFiles/loadex_ordering.dir/rcm.cpp.o"
  "CMakeFiles/loadex_ordering.dir/rcm.cpp.o.d"
  "libloadex_ordering.a"
  "libloadex_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loadex_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
