file(REMOVE_RECURSE
  "libloadex_ordering.a"
)
