file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_symbolic.dir/bench_micro_symbolic.cpp.o"
  "CMakeFiles/bench_micro_symbolic.dir/bench_micro_symbolic.cpp.o.d"
  "bench_micro_symbolic"
  "bench_micro_symbolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_symbolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
