# Empty dependencies file for bench_micro_symbolic.
# This may be replaced when dependencies are built.
