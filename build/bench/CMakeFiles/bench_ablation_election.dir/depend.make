# Empty dependencies file for bench_ablation_election.
# This may be replaced when dependencies are built.
