file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_no_more_master.dir/bench_ablation_no_more_master.cpp.o"
  "CMakeFiles/bench_ablation_no_more_master.dir/bench_ablation_no_more_master.cpp.o.d"
  "bench_ablation_no_more_master"
  "bench_ablation_no_more_master.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_no_more_master.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
