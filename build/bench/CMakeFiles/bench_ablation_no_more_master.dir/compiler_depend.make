# Empty compiler generated dependencies file for bench_ablation_no_more_master.
# This may be replaced when dependencies are built.
