# Empty dependencies file for bench_table3_decisions.
# This may be replaced when dependencies are built.
