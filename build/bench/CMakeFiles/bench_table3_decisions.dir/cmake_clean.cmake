file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_decisions.dir/bench_table3_decisions.cpp.o"
  "CMakeFiles/bench_table3_decisions.dir/bench_table3_decisions.cpp.o.d"
  "bench_table3_decisions"
  "bench_table3_decisions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_decisions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
