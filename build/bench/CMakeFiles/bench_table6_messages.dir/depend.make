# Empty dependencies file for bench_table6_messages.
# This may be replaced when dependencies are built.
