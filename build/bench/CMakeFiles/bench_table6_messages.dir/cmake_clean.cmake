file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_messages.dir/bench_table6_messages.cpp.o"
  "CMakeFiles/bench_table6_messages.dir/bench_table6_messages.cpp.o.d"
  "bench_table6_messages"
  "bench_table6_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
