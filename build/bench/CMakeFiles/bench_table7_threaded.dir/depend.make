# Empty dependencies file for bench_table7_threaded.
# This may be replaced when dependencies are built.
