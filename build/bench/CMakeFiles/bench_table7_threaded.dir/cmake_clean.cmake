file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_threaded.dir/bench_table7_threaded.cpp.o"
  "CMakeFiles/bench_table7_threaded.dir/bench_table7_threaded.cpp.o.d"
  "bench_table7_threaded"
  "bench_table7_threaded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_threaded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
