
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_threshold.cpp" "bench/CMakeFiles/bench_ablation_threshold.dir/bench_ablation_threshold.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_threshold.dir/bench_ablation_threshold.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/solver/CMakeFiles/loadex_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/loadex_common.dir/DependInfo.cmake"
  "/root/repo/build/src/symbolic/CMakeFiles/loadex_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/ordering/CMakeFiles/loadex_ordering.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/loadex_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/loadex_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/loadex_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
