# Empty compiler generated dependencies file for bench_tables1_2_problems.
# This may be replaced when dependencies are built.
