file(REMOVE_RECURSE
  "CMakeFiles/bench_tables1_2_problems.dir/bench_tables1_2_problems.cpp.o"
  "CMakeFiles/bench_tables1_2_problems.dir/bench_tables1_2_problems.cpp.o.d"
  "bench_tables1_2_problems"
  "bench_tables1_2_problems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tables1_2_problems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
