file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_naive_incoherence.dir/bench_fig1_naive_incoherence.cpp.o"
  "CMakeFiles/bench_fig1_naive_incoherence.dir/bench_fig1_naive_incoherence.cpp.o.d"
  "bench_fig1_naive_incoherence"
  "bench_fig1_naive_incoherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_naive_incoherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
