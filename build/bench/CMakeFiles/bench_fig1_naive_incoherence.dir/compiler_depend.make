# Empty compiler generated dependencies file for bench_fig1_naive_incoherence.
# This may be replaced when dependencies are built.
