file(REMOVE_RECURSE
  "CMakeFiles/test_core_snapshot.dir/test_core_snapshot.cpp.o"
  "CMakeFiles/test_core_snapshot.dir/test_core_snapshot.cpp.o.d"
  "test_core_snapshot"
  "test_core_snapshot.pdb"
  "test_core_snapshot[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
