# Empty compiler generated dependencies file for test_core_snapshot.
# This may be replaced when dependencies are built.
