# Empty dependencies file for test_core_messages.
# This may be replaced when dependencies are built.
