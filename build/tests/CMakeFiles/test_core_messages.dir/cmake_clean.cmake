file(REMOVE_RECURSE
  "CMakeFiles/test_core_messages.dir/test_core_messages.cpp.o"
  "CMakeFiles/test_core_messages.dir/test_core_messages.cpp.o.d"
  "test_core_messages"
  "test_core_messages.pdb"
  "test_core_messages[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
