# Empty dependencies file for test_sparse_pattern.
# This may be replaced when dependencies are built.
