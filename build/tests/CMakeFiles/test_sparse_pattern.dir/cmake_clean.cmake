file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_pattern.dir/test_sparse_pattern.cpp.o"
  "CMakeFiles/test_sparse_pattern.dir/test_sparse_pattern.cpp.o.d"
  "test_sparse_pattern"
  "test_sparse_pattern.pdb"
  "test_sparse_pattern[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
