file(REMOVE_RECURSE
  "CMakeFiles/test_solver_invariants.dir/test_solver_invariants.cpp.o"
  "CMakeFiles/test_solver_invariants.dir/test_solver_invariants.cpp.o.d"
  "test_solver_invariants"
  "test_solver_invariants.pdb"
  "test_solver_invariants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solver_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
