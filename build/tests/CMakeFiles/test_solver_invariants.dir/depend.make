# Empty dependencies file for test_solver_invariants.
# This may be replaced when dependencies are built.
