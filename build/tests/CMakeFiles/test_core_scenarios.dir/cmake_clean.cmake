file(REMOVE_RECURSE
  "CMakeFiles/test_core_scenarios.dir/test_core_scenarios.cpp.o"
  "CMakeFiles/test_core_scenarios.dir/test_core_scenarios.cpp.o.d"
  "test_core_scenarios"
  "test_core_scenarios.pdb"
  "test_core_scenarios[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
