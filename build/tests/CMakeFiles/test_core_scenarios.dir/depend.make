# Empty dependencies file for test_core_scenarios.
# This may be replaced when dependencies are built.
