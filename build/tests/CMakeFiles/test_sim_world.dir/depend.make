# Empty dependencies file for test_sim_world.
# This may be replaced when dependencies are built.
