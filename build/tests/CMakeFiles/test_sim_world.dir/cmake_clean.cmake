file(REMOVE_RECURSE
  "CMakeFiles/test_sim_world.dir/test_sim_world.cpp.o"
  "CMakeFiles/test_sim_world.dir/test_sim_world.cpp.o.d"
  "test_sim_world"
  "test_sim_world.pdb"
  "test_sim_world[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_world.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
