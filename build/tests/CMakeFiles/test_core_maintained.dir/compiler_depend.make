# Empty compiler generated dependencies file for test_core_maintained.
# This may be replaced when dependencies are built.
