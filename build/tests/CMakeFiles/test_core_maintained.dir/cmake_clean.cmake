file(REMOVE_RECURSE
  "CMakeFiles/test_core_maintained.dir/test_core_maintained.cpp.o"
  "CMakeFiles/test_core_maintained.dir/test_core_maintained.cpp.o.d"
  "test_core_maintained"
  "test_core_maintained.pdb"
  "test_core_maintained[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_maintained.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
