# Empty compiler generated dependencies file for test_solver_integration.
# This may be replaced when dependencies are built.
