file(REMOVE_RECURSE
  "CMakeFiles/test_solver_mapping.dir/test_solver_mapping.cpp.o"
  "CMakeFiles/test_solver_mapping.dir/test_solver_mapping.cpp.o.d"
  "test_solver_mapping"
  "test_solver_mapping.pdb"
  "test_solver_mapping[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solver_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
