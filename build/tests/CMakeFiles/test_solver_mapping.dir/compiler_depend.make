# Empty compiler generated dependencies file for test_solver_mapping.
# This may be replaced when dependencies are built.
