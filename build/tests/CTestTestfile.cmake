# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common_rng[1]_include.cmake")
include("/root/repo/build/tests/test_common_stats[1]_include.cmake")
include("/root/repo/build/tests/test_common_util[1]_include.cmake")
include("/root/repo/build/tests/test_sim_event_queue[1]_include.cmake")
include("/root/repo/build/tests/test_sim_world[1]_include.cmake")
include("/root/repo/build/tests/test_sim_network[1]_include.cmake")
include("/root/repo/build/tests/test_sim_process[1]_include.cmake")
include("/root/repo/build/tests/test_core_maintained[1]_include.cmake")
include("/root/repo/build/tests/test_core_snapshot[1]_include.cmake")
include("/root/repo/build/tests/test_core_scenarios[1]_include.cmake")
include("/root/repo/build/tests/test_core_stress[1]_include.cmake")
include("/root/repo/build/tests/test_core_messages[1]_include.cmake")
include("/root/repo/build/tests/test_sparse_pattern[1]_include.cmake")
include("/root/repo/build/tests/test_ordering[1]_include.cmake")
include("/root/repo/build/tests/test_symbolic[1]_include.cmake")
include("/root/repo/build/tests/test_solver_mapping[1]_include.cmake")
include("/root/repo/build/tests/test_solver_integration[1]_include.cmake")
include("/root/repo/build/tests/test_solver_invariants[1]_include.cmake")
