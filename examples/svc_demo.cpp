// Service-workload demo: an open-loop request stream dispatched across
// heterogeneous servers by a pluggable policy — the repo's second
// application behind the Mechanism seam (see DESIGN.md §14).
//
//   ./svc_demo                                # shortest_queue oracle, sim
//   ./svc_demo --policy snapshot              # paper mechanism as policy
//   ./svc_demo --policy stale_shortest_queue --refresh 0.02
//   ./svc_demo --rt                           # same run on real threads
//   ./svc_demo --policy increment --crash     # one server dies mid-run
//
// Policies: random | round_robin | shortest_queue | stale_shortest_queue
//           | naive | increment | snapshot
//
// Every run enforces request conservation (arrived == completed +
// dropped-with-cause) and prints the sojourn-time distribution the
// chosen policy produced.
#include <iostream>
#include <string>

#include "common/cli.h"
#include "common/table.h"
#include "svc/arrivals.h"
#include "svc/rt_driver.h"
#include "svc/service_app.h"

using namespace loadex;

namespace {

std::string us(double seconds) { return Table::fmt(seconds * 1e6, 1); }

void printOutcome(const std::string& title, const svc::LedgerTotals& totals,
                  const obs::Histogram& sojourn,
                  const obs::Histogram& queue_wait, double info_age,
                  const core::MechanismStats& ms) {
  Table t(title);
  t.setHeader({"metric", "value"});
  t.addRow({"requests arrived", std::to_string(totals.arrived)});
  t.addRow({"completed", std::to_string(totals.completed)});
  t.addRow({"dropped (no candidate)",
            std::to_string(totals.dropped_no_candidate)});
  t.addRow({"dropped (server crash)",
            std::to_string(totals.dropped_server_crash)});
  t.addRow({"dropped (lost)", std::to_string(totals.dropped_lost)});
  t.addRow({"sojourn mean us", us(sojourn.mean())});
  t.addRow({"sojourn p50 us", us(sojourn.p50())});
  t.addRow({"sojourn p95 us", us(sojourn.p95())});
  t.addRow({"sojourn p99 us", us(sojourn.p99())});
  t.addRow({"queue wait mean us", us(queue_wait.mean())});
  t.addRow({"mean info age us", us(info_age)});
  t.addRow({"state messages", std::to_string(ms.messagesSent())});
  t.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const svc::PolicyKind policy =
      svc::parsePolicyKind(flags.getString("policy", "shortest_queue"));
  const int nprocs = static_cast<int>(flags.getInt("n", 6));
  const int requests = static_cast<int>(flags.getInt("requests", 5000));
  const bool rt = flags.getBool("rt", false);
  const bool crash = flags.getBool("crash", false);
  const double refresh = flags.getDouble("refresh", 10e-3);
  const auto seed = static_cast<std::uint64_t>(flags.getInt("seed", 42));

  // 70% of aggregate capacity (nprocs-1 servers at 1 Gflop/s, 1 Mflop
  // mean request), bursty: 1.4x/0.6x of the base rate in 25 ms phases.
  const double base = 0.7 * static_cast<double>(nprocs - 1) * 1e9 / 1e6;
  svc::ArrivalConfig acfg;
  acfg.seed = seed;
  acfg.n_requests = requests;
  acfg.phases = {{1.4 * base, 25e-3}, {0.6 * base, 25e-3}};
  const svc::ArrivalScript script = svc::generateArrivals(acfg);

  core::MechanismConfig mech;
  mech.threshold = {0.5e6, 1e18};
  if (crash) {
    mech.reliability.reliable_updates = true;
    mech.reliability.snapshot_timeout_s = 5e-3;
  }

  std::cout << "svc_demo: " << requests << " requests -> " << nprocs - 1
            << " servers, policy " << svc::policyKindName(policy) << ", "
            << (rt ? "real threads" : "simulated") << "\n\n";

  if (rt) {
    svc::SvcRtConfig cfg;
    cfg.nprocs = nprocs;
    cfg.policy = policy;
    cfg.stale_refresh_s = refresh;
    cfg.mech = mech;
    cfg.audit = svc::svcAuditorConfig(crash);
    if (crash) {
      cfg.rt.faults.manual_control = true;
      cfg.rt.faults.suspicion.enabled = true;
      cfg.crash_rank = nprocs - 1;
      cfg.down_wait_s = 0.1;
    }
    const svc::SvcRtResult res = svc::runSvcRt(cfg, script);
    printOutcome("rt outcome (dispatch+transport sojourn)", res.totals,
                 res.sojourn, res.queue_wait, res.mean_info_age,
                 res.mech_stats);
    std::cout << "wall time: " << Table::fmt(res.wall_s, 3) << " s\n";
  } else {
    svc::SvcSimConfig cfg;
    cfg.nprocs = nprocs;
    cfg.policy = policy;
    cfg.stale_refresh_s = refresh;
    cfg.mech = mech;
    cfg.audit = svc::svcAuditorConfig(crash);
    if (crash) {
      using Kind = loadex::ProcessFaultEvent::Kind;
      const double makespan =
          static_cast<double>(requests) / base;  // expected, at 70% load
      cfg.process_faults.push_back(
          {nprocs - 1, 0.3 * makespan, Kind::kCrash});
      cfg.process_faults.push_back(
          {nprocs - 1, 0.5 * makespan, Kind::kRestart});
    }
    const svc::SvcSimResult res = svc::runSvcSim(cfg, script);
    printOutcome("sim outcome", res.totals, res.sojourn, res.queue_wait,
                 res.mean_info_age, res.mech_stats);
    std::cout << "simulated makespan: "
              << Table::fmt(res.run.end_time, 4) << " s ("
              << res.run.events << " events)\n";
  }
  std::cout << "\nrequest conservation verified: arrived == completed + "
               "dropped (enforced by SvcLedger::expectConserved)\n";
  return 0;
}
