// Workload-based dynamic scheduling (§4.2.2): factorization time as a
// function of the exchange mechanism and of the machine size.
//
//   ./workload_scheduling [--problem CONV3D64] [--scale 0.5]
#include <iostream>

#include "common/cli.h"
#include "common/table.h"
#include "solver/runner.h"
#include "sparse/generators.h"

using namespace loadex;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const std::string name = flags.getString("problem", "CONV3D64");
  const double scale = flags.getDouble("scale", 0.5);

  const auto problem = sparse::paperProblem(name, scale);
  if (!problem) {
    std::cerr << "unknown problem: " << name << "\n";
    return 1;
  }
  std::cout << "problem " << problem->name << " (n=" << problem->pattern.n()
            << "), workload-based scheduling\n";
  const auto analysis = solver::analyzeProblem(*problem);

  Table t("Factorization time across machine sizes");
  t.setHeader({"procs", "increments (s)", "snapshot (s)", "snap/incr",
               "snapshot stall (s)", "decisions"});
  for (const int procs : {16, 32, 64, 128}) {
    std::vector<solver::SolverResult> r;
    for (const auto kind : {core::MechanismKind::kIncrement,
                            core::MechanismKind::kSnapshot}) {
      solver::SolverConfig cfg;
      cfg.nprocs = procs;
      cfg.mechanism = kind;
      cfg.strategy = solver::Strategy::kWorkload;
      r.push_back(solver::runSolver(analysis, problem->symmetric, cfg,
                                    problem->name));
    }
    t.addRow({Table::fmtInt(procs), Table::fmt(r[0].factor_time, 3),
              Table::fmt(r[1].factor_time, 3),
              Table::fmt(r[1].factor_time / r[0].factor_time, 2),
              Table::fmt(r[1].snapshot_time, 3),
              Table::fmtInt(r[0].dynamic_decisions)});
  }
  t.setFootnote(
      "Paper Table 5: the snapshot mechanism's strong synchronisation "
      "(processes freeze while a snapshot is live, and simultaneous "
      "decisions serialize) costs wall-clock time at every machine size.");
  t.print(std::cout);
  return 0;
}
