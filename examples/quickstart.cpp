// Quickstart: factorize one sparse problem on a simulated 16-process
// machine under each of the three load-exchange mechanisms and compare.
//
//   ./quickstart [--n 16] [--procs 16] [--strategy workload|memory]
//
// Walkthrough of the full public API: generate a pattern, order it,
// run the symbolic analysis, and run the simulated parallel solver.
#include <iostream>

#include "common/cli.h"
#include "common/table.h"
#include "solver/runner.h"
#include "sparse/generators.h"

using namespace loadex;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const int n = static_cast<int>(flags.getInt("n", 16));
  const int procs = static_cast<int>(flags.getInt("procs", 16));
  const auto strategy =
      solver::parseStrategy(flags.getString("strategy", "workload"));

  // 1. A sparse problem: the structure of a 3-D finite-difference grid.
  sparse::Problem problem;
  problem.name = "grid3d_" + std::to_string(n);
  problem.symmetric = true;
  problem.pattern = sparse::grid3d(n, n, n);
  std::cout << "problem: " << problem.name << "  (order "
            << problem.pattern.n() << ", nnz " << problem.pattern.nnzFull()
            << ")\n";

  // 2. Symbolic analysis: nested-dissection ordering, elimination tree,
  //    supernode amalgamation -> assembly tree.
  const symbolic::Analysis analysis = solver::analyzeProblem(problem);
  std::cout << "assembly tree: " << analysis.tree.size() << " fronts, max "
            << analysis.tree.maxFront() << ", factor nnz "
            << analysis.factor_nnz << "\n\n";

  // 3. Simulated parallel factorization under each mechanism.
  Table t("Mechanism comparison — " + std::to_string(procs) +
          " processes, " + solver::strategyName(strategy) + " scheduling");
  t.setHeader({"Mechanism", "time (s)", "peak mem (entries)", "state msgs",
               "decisions", "snapshot stall (s)"});
  for (const auto kind :
       {core::MechanismKind::kNaive, core::MechanismKind::kIncrement,
        core::MechanismKind::kSnapshot}) {
    solver::SolverConfig cfg;
    cfg.nprocs = procs;
    cfg.mechanism = kind;
    cfg.strategy = strategy;
    cfg.mapping.type2_min_front = 150;
    cfg.mapping.type2_min_border = 16;
    const auto res =
        solver::runSolver(analysis, problem.symmetric, cfg, problem.name);
    t.addRow({res.mechanism, Table::fmt(res.factor_time, 4),
              Table::fmtInt(static_cast<long long>(res.peak_active_mem)),
              Table::fmtInt(res.state_messages),
              Table::fmtInt(res.dynamic_decisions),
              Table::fmt(res.snapshot_time, 4)});
    if (!res.completed) std::cout << "WARNING: run did not complete!\n";
  }
  t.print(std::cout);
  return 0;
}
