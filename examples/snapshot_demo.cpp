// Snapshot protocol walkthrough (§3): three processes, two of which
// initiate snapshots simultaneously. Prints the message flow so the
// leader election, delayed answers, re-arm and sequentialisation are
// visible.
#include <iostream>
#include <memory>

#include "common/cli.h"
#include "common/table.h"
#include "core/binding.h"
#include "core/snapshot.h"
#include "obs/trace.h"
#include "sim/world.h"

using namespace loadex;

namespace {

/// Transport decorator that logs every state message sent.
class LoggingTransport final : public core::Transport {
 public:
  LoggingTransport(sim::Process& process) : inner_(process) {}
  Rank self() const override { return inner_.self(); }
  int nprocs() const override { return inner_.nprocs(); }
  SimTime now() const override { return inner_.now(); }
  void sendState(Rank dst, core::StateTag tag, Bytes size,
                 std::shared_ptr<const sim::Payload> payload) override {
    std::cout << "  t=" << Table::fmt(now() * 1e6, 1) << "us  P" << self()
              << " -> P" << dst << "  " << core::stateTagName(tag) << "\n";
    inner_.sendState(dst, tag, size, std::move(payload));
  }

 private:
  core::SimTransport inner_;
};

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  // --trace <path>: dump a Chrome trace-event JSON of the run, loadable in
  // Perfetto (ui.perfetto.dev) or chrome://tracing. Per-rank tracks,
  // send->deliver flow arrows, snapshot lifecycle and stall spans.
  const std::string trace_path = flags.getString("trace", "");
  std::unique_ptr<obs::TraceRecorder> recorder;
  if (!trace_path.empty()) {
    recorder = std::make_unique<obs::TraceRecorder>();
    recorder->nameRankTracks(4);
    recorder->setMessageNamer([](int channel, int tag) {
      if (channel == 0)
        return std::string(
            core::stateTagName(static_cast<core::StateTag>(tag)));
      return "app/" + std::to_string(tag);
    });
  }
  obs::ScopedObservation observe(recorder.get(), nullptr);

  std::cout << "Snapshot demo: P0 and P2 initiate snapshots at the same "
               "instant on a 4-process system.\n"
            << "Min-rank election: P0 leads; P2 is preempted, re-arms with "
               "a fresh request id, and completes after P0's end_snp.\n\n";

  sim::WorldConfig wcfg;
  wcfg.nprocs = 4;
  sim::World world(wcfg);

  std::vector<std::unique_ptr<LoggingTransport>> transports;
  std::vector<std::unique_ptr<core::SnapshotMechanism>> mechs;
  for (Rank r = 0; r < 4; ++r) {
    transports.push_back(std::make_unique<LoggingTransport>(world.process(r)));
    mechs.push_back(std::make_unique<core::SnapshotMechanism>(
        *transports.back(), core::MechanismConfig{}));
    world.attach(r, nullptr, mechs.back().get());
  }
  for (Rank r = 0; r < 4; ++r)
    mechs[static_cast<std::size_t>(r)]->addLocalLoad(
        {100.0 * (r + 1), 10.0 * (r + 1)});

  auto initiate = [&](Rank master, Rank slave, double share) {
    auto& m = *mechs[static_cast<std::size_t>(master)];
    m.requestView([&, master, slave, share](const core::LoadView& v) {
      std::cout << "  t=" << Table::fmt(world.now() * 1e6, 1) << "us  P"
                << master << " VIEW COMPLETE:";
      for (Rank r = 0; r < 4; ++r)
        std::cout << " P" << r << "=" << Table::fmt(v.load(r).workload, 0);
      std::cout << " -> assigns " << Table::fmt(share, 0) << " to P" << slave
                << "\n";
      m.commitSelection({{slave, {share, 0.0}}});
    });
  };
  world.queue().scheduleAt(0.001, [&] { initiate(0, 3, 500.0); });
  world.queue().scheduleAt(0.001, [&] { initiate(2, 3, 300.0); });
  world.run();

  std::cout << "\nFinal local loads:";
  for (Rank r = 0; r < 4; ++r)
    std::cout << " P" << r << "="
              << Table::fmt(mechs[static_cast<std::size_t>(r)]->localLoad()
                                .workload,
                            0);
  std::cout << "\nP2's view of P3 at decision time included P0's 500-unit "
               "reservation: the snapshots were sequentialized.\n";
  std::cout << "Snapshots initiated: "
            << (mechs[0]->stats().snapshots_initiated +
                mechs[2]->stats().snapshots_initiated)
            << ", re-arms: " << mechs[2]->stats().snapshot_rearms << "\n";
  if (recorder != nullptr) {
    if (!recorder->writeChromeTraceFile(trace_path)) return 1;
    std::cout << "Trace (" << recorder->recorded() << " events) written to "
              << trace_path << " — open it at ui.perfetto.dev\n";
  }
  return 0;
}
