// Memory-based dynamic scheduling (§4.2.1): how much the peak of active
// memory depends on the accuracy of the load view.
//
// Runs a memory-hungry problem under the memory-based strategy and shows
// per-process memory peaks for each mechanism — the naive mechanism's
// stale views concentrate memory on a few processes.
//
//   ./memory_scheduling [--problem ULTRASOUND3] [--procs 32] [--scale 0.5]
#include <iostream>

#include "common/cli.h"
#include "common/table.h"
#include "core/binding.h"
#include "solver/factor_app.h"
#include "solver/runner.h"
#include "sparse/generators.h"

using namespace loadex;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const std::string name = flags.getString("problem", "ULTRASOUND3");
  const int procs = static_cast<int>(flags.getInt("procs", 32));
  const double scale = flags.getDouble("scale", 0.5);

  const auto problem = sparse::paperProblem(name, scale);
  if (!problem) {
    std::cerr << "unknown problem: " << name << "\n";
    return 1;
  }
  std::cout << "problem " << problem->name << " (n=" << problem->pattern.n()
            << "), " << procs << " processes, memory-based scheduling\n";
  const auto analysis = solver::analyzeProblem(*problem);

  Table t("Peak of active memory per mechanism");
  t.setHeader({"Mechanism", "max peak (Me)", "mean peak (Me)",
               "imbalance (max/mean)", "time (s)", "state msgs"});
  for (const auto kind :
       {core::MechanismKind::kNaive, core::MechanismKind::kIncrement,
        core::MechanismKind::kSnapshot}) {
    solver::SolverConfig cfg;
    cfg.nprocs = procs;
    cfg.mechanism = kind;
    cfg.strategy = solver::Strategy::kMemory;
    const auto res =
        solver::runSolver(analysis, problem->symmetric, cfg, problem->name);
    t.addRow({res.mechanism, Table::fmt(res.peak_active_mem / 1e6, 3),
              Table::fmt(res.avg_peak_active_mem / 1e6, 3),
              Table::fmt(res.peak_active_mem /
                             std::max(1.0, res.avg_peak_active_mem),
                         2),
              Table::fmt(res.factor_time, 3),
              Table::fmtInt(res.state_messages)});
  }
  t.setFootnote(
      "Paper Table 4: the memory metric varies violently, so the schedulers "
      "are very sensitive to view accuracy — the naive mechanism's memory "
      "peak is generally the worst, the snapshot's usually the best, with "
      "increments close behind at a fraction of the synchronisation cost.");
  t.print(std::cout);
  return 0;
}
