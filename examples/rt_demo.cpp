// Real-threads runtime demo: the paper's mechanisms running on actual OS
// threads instead of the discrete-event simulator.
//
//   ./rt_demo                                 # snapshot mechanism, 6 ranks
//   ./rt_demo --mechanism increments --n 8
//   ./rt_demo --trace rt_trace.json           # Perfetto trace, REAL time
//
// One thread per rank, each with a bounded MPSC mailbox and a timer wheel;
// the same core::MechanismSet the simulator binds runs here unchanged over
// rt transports. A seeded script (load storm + master selections) floods
// the world, the drain protocol waits for quiescence, and the run prints
// the conservation bookkeeping plus real selection latencies. With
// --trace, the obs layer records the protocol lanes with *wall-clock*
// timestamps — the same Perfetto layout as the simulator demos, but the
// time axis is the host's.
#include <iostream>
#include <memory>
#include <string>

#include "common/cli.h"
#include "common/table.h"
#include "harness/script.h"
#include "obs/trace.h"
#include "rt/audit_lock.h"
#include "rt/workload.h"
#include "rt/world.h"

using namespace loadex;

namespace {

core::MechanismKind parseKind(const std::string& name) {
  if (name == "naive") return core::MechanismKind::kNaive;
  if (name == "increments" || name == "increment")
    return core::MechanismKind::kIncrement;
  if (name == "snapshot") return core::MechanismKind::kSnapshot;
  std::cerr << "unknown --mechanism '" << name
            << "' (naive | increments | snapshot), using snapshot\n";
  return core::MechanismKind::kSnapshot;
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const auto kind = parseKind(flags.getString("mechanism", "snapshot"));
  const int nprocs = static_cast<int>(flags.getInt("n", 6));
  const auto seed = static_cast<std::uint64_t>(flags.getInt("seed", 7));
  const std::string trace_path = flags.getString("trace", "");

  // Build the script before the world so the printout can describe it.
  harness::Script script = harness::drawScript(seed, nprocs, nprocs);
  script.kind = kind;
  script.no_more_master = kNoRank;  // keep the demo's bookkeeping simple
  const harness::ScriptExpectations want = harness::expectationsOf(script);

  std::cout << "rt demo: " << nprocs << " rank threads, "
            << core::mechanismKindName(kind) << " mechanism, seed " << seed
            << "\n  script: " << script.loads.size() << " load changes, "
            << script.selections.size() << " master selections\n\n";

  std::unique_ptr<obs::TraceRecorder> recorder;
  if (!trace_path.empty()) {
    obs::TraceConfig tcfg;
    tcfg.process_name = "loadex rt";
    recorder = std::make_unique<obs::TraceRecorder>(tcfg);
    recorder->nameRankTracks(nprocs);
    recorder->setMessageNamer([](int channel, int tag) {
      if (channel == 0)
        return std::string(
            core::stateTagName(static_cast<core::StateTag>(tag)));
      return "app/" + std::to_string(tag);
    });
  }
  obs::ScopedObservation observe(recorder.get(), nullptr);

  rt::RtConfig rcfg;
  rcfg.nprocs = nprocs;
  rt::RtWorld world(rcfg);
  core::MechanismSet mechs(world.transports(), kind,
                           [&] {
                             core::MechanismConfig m;
                             m.threshold = {script.threshold,
                                            script.threshold};
                             return m;
                           }());

  // The protocol auditor rides along exactly as it does over the
  // simulator (serialised per hook for the concurrent rank threads).
  core::ProtocolAuditor auditor{core::AuditorConfig{}};
  rt::RtAuditBinding audit(auditor, mechs);

  for (Rank r = 0; r < nprocs; ++r) world.attach(r, &mechs.at(r));
  world.start();
  rt::WorkloadDriver driver(world, mechs);
  const rt::WorkloadResult res =
      driver.run(script, /*time_scale=*/0.0, /*drain_timeout_s=*/60.0);
  world.stop();
  auditor.finish();

  const rt::RtRunStats st = world.runStats();
  Table t("Run summary (real time)");
  t.setHeader({"quantity", "value"});
  t.addRow({"drained to quiescence", res.drained ? "yes" : "NO"});
  t.addRow({"wall time", Table::fmt(res.wall_s * 1e3, 2) + " ms"});
  t.addRow({"selections committed",
            std::to_string(res.selections_committed) + " / " +
                std::to_string(want.selections)});
  t.addRow({"total load (got)", Table::fmt(res.total_load.workload, 6)});
  t.addRow({"total load (script)", Table::fmt(want.total_load.workload, 6)});
  t.addRow({"state msgs posted/delivered", std::to_string(st.state_posted) +
                                               " / " +
                                               std::to_string(
                                                   st.state_delivered)});
  t.addRow({"timers armed/fired", std::to_string(st.timers_armed) + " / " +
                                      std::to_string(st.timers_fired)});
  t.addRow({"mailbox spills", std::to_string(st.spill_enqueues)});
  t.addRow({"audit violations",
            std::to_string(auditor.violations().size())});
  t.print(std::cout);

  if (!res.selection_latency_s.empty()) {
    std::cout << "\nselection latencies (requestView -> view):";
    for (const double l : res.selection_latency_s)
      std::cout << " " << Table::fmt(l * 1e6, 1) << "us";
    std::cout << "\n";
  }

  if (recorder != nullptr) {
    if (recorder->writeChromeTraceFile(trace_path))
      std::cout << "\ntrace: " << recorder->recorded() << " events -> "
                << trace_path << " (open in ui.perfetto.dev; timestamps "
                << "are host wall-clock)\n";
  }

  const bool ok = res.drained && auditor.violations().empty() &&
                  res.selections_committed == want.selections;
  return ok ? 0 : 1;
}
