// Real-threads runtime demo: the paper's mechanisms running on actual OS
// threads instead of the discrete-event simulator.
//
//   ./rt_demo                                 # snapshot mechanism, 6 ranks
//   ./rt_demo --mechanism increments --n 8
//   ./rt_demo --trace rt_trace.json           # Perfetto trace, REAL time
//
// Fault injection (all off by default; see DESIGN.md §12):
//   ./rt_demo --drop 0.05                     # 5% state-message loss
//   ./rt_demo --drop 0.05 --dup 0.02 --spike 0.02
//   ./rt_demo --n 8 --crash 7 --detector      # rank 7 crashes mid-run,
//                                             # is detected, restarts, and
//                                             # rejoins via resync
//
// One thread per rank, each with a bounded MPSC mailbox and a timer wheel;
// the same core::MechanismSet the simulator binds runs here unchanged over
// rt transports. A seeded script (load storm + master selections) floods
// the world, the drain protocol waits for quiescence, and the run prints
// the conservation bookkeeping plus real selection latencies. With
// --trace, the obs layer records the protocol lanes with *wall-clock*
// timestamps — the same Perfetto layout as the simulator demos, but the
// time axis is the host's.
#include <iostream>
#include <memory>
#include <string>

#include "common/cli.h"
#include "common/table.h"
#include "harness/script.h"
#include "obs/trace.h"
#include "rt/audit_lock.h"
#include "rt/workload.h"
#include "rt/world.h"

using namespace loadex;

namespace {

core::MechanismKind parseKind(const std::string& name) {
  if (name == "naive") return core::MechanismKind::kNaive;
  if (name == "increments" || name == "increment")
    return core::MechanismKind::kIncrement;
  if (name == "snapshot") return core::MechanismKind::kSnapshot;
  std::cerr << "unknown --mechanism '" << name
            << "' (naive | increments | snapshot), using snapshot\n";
  return core::MechanismKind::kSnapshot;
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const auto kind = parseKind(flags.getString("mechanism", "snapshot"));
  const int nprocs = static_cast<int>(flags.getInt("n", 6));
  const auto seed = static_cast<std::uint64_t>(flags.getInt("seed", 7));
  const std::string trace_path = flags.getString("trace", "");

  // ---- fault plan (inert unless a fault flag is passed) ----------------
  rt::FaultPlan plan;
  plan.messages.drop_prob = flags.getDouble("drop", 0.0);
  plan.messages.duplicate_prob = flags.getDouble("dup", 0.0);
  plan.messages.latency_spike_prob = flags.getDouble("spike", 0.0);
  plan.messages.latency_spike_s = 2e-3;
  plan.messages.affects_app = false;  // stress the protocol, not the app
  plan.messages.seed = seed * 1069 + 7;
  const Rank crash_rank = static_cast<Rank>(flags.getInt("crash", kNoRank));
  if (crash_rank != kNoRank) {
    if (crash_rank < 0 || crash_rank >= nprocs) {
      std::cerr << "--crash rank out of range [0, " << nprocs << ")\n";
      return 1;
    }
    using Kind = ProcessFaultEvent::Kind;
    plan.process.push_back({crash_rank, 10e-3, Kind::kCrash});
    plan.process.push_back({crash_rank, 30e-3, Kind::kRestart});
  }
  if (flags.getBool("detector", false)) {
    plan.suspicion.enabled = true;
    plan.suspicion.suspect_after_s = 8e-3;
    plan.suspicion.dead_after_s = 30e-3;
    plan.suspicion.sweep_period_s = 1e-3;
  }
  const bool faulty = plan.enabled();
  // Pace the script over ~50 ms of wall time when faults are on, so the
  // scripted lifecycle events and heartbeat deadlines land mid-run
  // instead of after a flooded script has already quiesced.
  const double time_scale = faulty ? 0.05 : 0.0;

  // Build the script before the world so the printout can describe it.
  harness::Script script = harness::drawScript(seed, nprocs, nprocs);
  script.kind = kind;
  script.no_more_master = kNoRank;  // keep the demo's bookkeeping simple
  const harness::ScriptExpectations want = harness::expectationsOf(script);

  std::cout << "rt demo: " << nprocs << " rank threads, "
            << core::mechanismKindName(kind) << " mechanism, seed " << seed
            << "\n  script: " << script.loads.size() << " load changes, "
            << script.selections.size() << " master selections\n\n";

  std::unique_ptr<obs::TraceRecorder> recorder;
  if (!trace_path.empty()) {
    obs::TraceConfig tcfg;
    tcfg.process_name = "loadex rt";
    recorder = std::make_unique<obs::TraceRecorder>(tcfg);
    recorder->nameRankTracks(nprocs);
    recorder->setMessageNamer([](int channel, int tag) {
      if (channel == 0)
        return std::string(
            core::stateTagName(static_cast<core::StateTag>(tag)));
      return "app/" + std::to_string(tag);
    });
  }
  obs::ScopedObservation observe(recorder.get(), nullptr);

  rt::RtConfig rcfg;
  rcfg.nprocs = nprocs;
  rcfg.faults = plan;
  rt::RtWorld world(rcfg);
  core::MechanismSet mechs(world.transports(), kind,
                           [&] {
                             core::MechanismConfig m;
                             m.threshold = {script.threshold,
                                            script.threshold};
                             if (plan.messages.enabled()) {
                               // Harden the protocols against the injected
                               // loss: the un-hardened paper variants
                               // deadlock or diverge under drops.
                               m.reliability.reliable_updates =
                                   kind == core::MechanismKind::kIncrement;
                               m.reliability.snapshot_timeout_s = 10e-3;
                               m.reliability.max_snapshot_retries = 3;
                             }
                             return m;
                           }());

  // The protocol auditor rides along exactly as it does over the
  // simulator (serialised per hook for the concurrent rank threads).
  // Under injected faults it keeps auditing, with the loss/crash
  // tolerances a lossy platform requires.
  core::AuditorConfig acfg;
  if (plan.messages.enabled()) acfg.allow_message_loss = true;
  if (!plan.process.empty()) {
    // A crash also loses whatever was in flight to the sealed mailbox.
    acfg.allow_message_loss = true;
    acfg.allow_crashes = true;
    acfg.check_conservation = false;
  }
  core::ProtocolAuditor auditor{acfg};
  rt::RtAuditBinding audit(auditor, mechs);

  for (Rank r = 0; r < nprocs; ++r) world.attach(r, &mechs.at(r));
  if (plan.needsSupervisor()) world.superviseMechanisms(&mechs);
  world.start();
  rt::WorkloadDriver driver(world, mechs);
  const rt::WorkloadResult res =
      driver.run(script, time_scale, /*drain_timeout_s=*/60.0);
  world.stop();
  if (crash_rank != kNoRank) {
    auditor.noteCrashed(crash_rank);
    auditor.noteRestarted(crash_rank);
  }
  auditor.finish();

  const rt::RtRunStats st = world.runStats();
  Table t("Run summary (real time)");
  t.setHeader({"quantity", "value"});
  t.addRow({"drained to quiescence", res.drained ? "yes" : "NO"});
  t.addRow({"wall time", Table::fmt(res.wall_s * 1e3, 2) + " ms"});
  t.addRow({"selections committed",
            std::to_string(res.selections_committed) + " / " +
                std::to_string(want.selections)});
  t.addRow({"total load (got)", Table::fmt(res.total_load.workload, 6)});
  t.addRow({"total load (script)", Table::fmt(want.total_load.workload, 6)});
  t.addRow({"state msgs posted/delivered", std::to_string(st.state_posted) +
                                               " / " +
                                               std::to_string(
                                                   st.state_delivered)});
  t.addRow({"timers armed/fired", std::to_string(st.timers_armed) + " / " +
                                      std::to_string(st.timers_fired)});
  t.addRow({"mailbox spills", std::to_string(st.spill_enqueues)});
  if (faulty) {
    t.addRow({"state dropped/duplicated",
              std::to_string(st.state_dropped) + " / " +
                  std::to_string(st.state_duplicated)});
    t.addRow({"fault drops / latency spikes",
              std::to_string(st.fault_drops) + " / " +
                  std::to_string(st.latency_spikes)});
    t.addRow({"dropped at sealed mailbox",
              std::to_string(st.dropped_at_sealed_mailbox)});
    t.addRow({"crashes / restarts / resyncs",
              std::to_string(st.crashes) + " / " +
                  std::to_string(st.restarts) + " / " +
                  std::to_string(st.resyncs)});
    t.addRow({"suspects / deaths / revives",
              std::to_string(st.suspects_flagged) + " / " +
                  std::to_string(st.deaths_declared) + " / " +
                  std::to_string(st.revives)});
  }
  t.addRow({"audit violations",
            std::to_string(auditor.violations().size())});
  t.print(std::cout);

  if (!res.selection_latency_s.empty()) {
    std::cout << "\nselection latencies (requestView -> view):";
    for (const double l : res.selection_latency_s)
      std::cout << " " << Table::fmt(l * 1e6, 1) << "us";
    std::cout << "\n";
  }

  if (recorder != nullptr) {
    if (recorder->writeChromeTraceFile(trace_path))
      std::cout << "\ntrace: " << recorder->recorded() << " events -> "
                << trace_path << " (open in ui.perfetto.dev; timestamps "
                << "are host wall-clock)\n";
  }

  // Clean runs must commit every scripted selection. Under faults the
  // success bar is survival: quiescent drain + a clean audit (a selection
  // posted to a crashed master is legitimately lost, and a degraded view
  // may legitimately skip; both are reported above, not failures).
  bool ok = res.drained && auditor.violations().empty();
  if (!faulty) ok = ok && res.selections_committed == want.selections;
  return ok ? 0 : 1;
}
