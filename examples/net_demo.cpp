// Multi-process demo: the paper's mechanisms running as N separate OS
// processes exchanging serialized state over real sockets.
//
//   ./net_demo                                  # snapshot, 6 ranks, UDS
//   ./net_demo --mechanism increments --n 8
//   ./net_demo --transport tcp                  # loopback TCP instead
//   ./net_demo --no-coalesce                    # flush every message
//   ./net_demo --drop 0.05 --heartbeat          # lossy links + detector
//   ./net_demo --time-scale 0.05                # pace the script over 50ms
//
// The calling process forks one child per rank and becomes the
// supervisor. Each child runs a single-threaded epoll loop that is also
// its mechanism's Transport: state messages are encoded through the
// versioned wire format (net/wire.h), cross a kernel boundary over TCP
// or Unix-domain stream sockets, and are decoded back into the exact
// payload structs the sim and rt runtimes deliver in-process. A
// rank-local ProtocolAuditor rides along in every child; the supervisor
// folds the per-rank summaries into one report whose conservation
// identity (posted + duplicated == delivered + dropped, per channel) is
// printed at the end.
#include <iostream>
#include <string>

#include "common/cli.h"
#include "common/table.h"
#include "harness/script.h"
#include "net/launch.h"

using namespace loadex;

namespace {

core::MechanismKind parseKind(const std::string& name) {
  if (name == "naive") return core::MechanismKind::kNaive;
  if (name == "increments" || name == "increment")
    return core::MechanismKind::kIncrement;
  if (name == "snapshot") return core::MechanismKind::kSnapshot;
  std::cerr << "unknown --mechanism '" << name
            << "' (naive | increments | snapshot), using snapshot\n";
  return core::MechanismKind::kSnapshot;
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const auto kind = parseKind(flags.getString("mechanism", "snapshot"));
  const int nprocs = static_cast<int>(flags.getInt("n", 6));
  const auto seed = static_cast<std::uint64_t>(flags.getInt("seed", 7));

  net::NetOptions opts;
  opts.transport = net::parseNetTransportKind(
      flags.getString("transport", "uds"));
  opts.coalesce = !flags.getBool("no-coalesce", false);
  opts.time_scale = flags.getDouble("time-scale", 0.0);
  opts.faults.drop_prob = flags.getDouble("drop", 0.0);
  opts.faults.duplicate_prob = flags.getDouble("dup", 0.0);
  opts.faults.seed = seed * 1069 + 7;
  if (flags.getBool("heartbeat", false)) {
    opts.heartbeat.period_s = 2e-3;
    opts.heartbeat.suspect_after_s = 20e-3;
    opts.heartbeat.dead_after_s = 200e-3;
  }

  harness::Script script = harness::drawScript(seed, nprocs, nprocs);
  script.kind = kind;
  script.no_more_master = kNoRank;
  script.hardened = opts.faults.enabled() &&
                    kind == core::MechanismKind::kIncrement;
  const harness::ScriptExpectations want = harness::expectationsOf(script);

  std::cout << "net demo: " << nprocs << " rank processes over "
            << net::netTransportKindName(opts.transport) << ", "
            << core::mechanismKindName(kind) << " mechanism, seed " << seed
            << "\n  script: " << script.loads.size() << " load changes, "
            << script.selections.size() << " master selections, coalescing "
            << (opts.coalesce ? "on" : "off") << "\n\n";

  const net::NetRunReport rep = net::runMultiProcess(script, opts);

  Table per("Per-rank summary");
  per.setHeader({"rank", "committed", "skipped", "load", "frames tx/rx",
                 "bytes tx", "writes", "exit"});
  for (const net::NetRankResult& r : rep.ranks) {
    per.addRow({std::to_string(r.rank), std::to_string(r.committed),
                std::to_string(r.skipped),
                Table::fmt(r.local_load.workload, 4),
                std::to_string(r.net.frames_sent) + "/" +
                    std::to_string(r.net.frames_delivered),
                std::to_string(r.net.bytes_sent),
                std::to_string(r.net.flush_writes),
                std::to_string(r.exit_code)});
  }
  per.print(std::cout);

  Table t("Run summary");
  t.setHeader({"quantity", "value"});
  t.addRow({"quiesced", rep.ok || rep.error.empty() ? "yes" : "NO"});
  t.addRow({"wall time", Table::fmt(rep.wall_s * 1e3, 2) + " ms"});
  t.addRow({"probe rounds", std::to_string(rep.probe_rounds)});
  t.addRow({"selections committed", std::to_string(rep.committed) + " / " +
                                        std::to_string(want.selections)});
  t.addRow({"total load (got)", Table::fmt(rep.total_load.workload, 6)});
  t.addRow({"total load (script)", Table::fmt(want.total_load.workload, 6)});
  t.addRow({"state posted/dup/deliv/drop",
            std::to_string(rep.state.posted) + " / " +
                std::to_string(rep.state.duplicated) + " / " +
                std::to_string(rep.state.delivered) + " / " +
                std::to_string(rep.state.dropped)});
  t.addRow({"work posted/deliv", std::to_string(rep.work.posted) + " / " +
                                     std::to_string(rep.work.delivered)});
  t.addRow({"bytes sent", std::to_string(rep.bytes_sent)});
  t.addRow({"write(2) calls", std::to_string(rep.flush_writes)});
  t.addRow({"frames / write",
            rep.flush_writes > 0
                ? Table::fmt(static_cast<double>(rep.frames_sent) /
                                 static_cast<double>(rep.flush_writes),
                             2)
                : "-"});
  t.addRow({"seq violations", std::to_string(rep.seq_violations)});
  t.addRow({"reconnects", std::to_string(rep.reconnects)});
  t.addRow({"audit violations", std::to_string(rep.audit_violations)});
  t.addRow({"conservation identity",
            rep.conservationHolds() ? "holds" : "BROKEN"});
  t.print(std::cout);

  if (!rep.error.empty())
    std::cout << "\nsupervisor error: " << rep.error << "\n";

  // Clean runs must commit every scripted selection; under injected loss
  // the bar is survival (quiescence, conservation, clean audits).
  bool ok = rep.ok && rep.conservationHolds();
  if (!opts.faults.enabled()) ok = ok && rep.committed == want.selections;
  return ok ? 0 : 1;
}
