// Tree explorer: inspect the assembly tree and the static plan (node
// types, masters, costs) of any generated problem — the paper's Fig. 2,
// interactively sized.
//
//   ./tree_explorer [--problem BMWCRA_1] [--scale 0.25] [--procs 8]
//                   [--ordering nd|rcm|amd|natural] [--depth 40]
#include <iostream>

#include "common/cli.h"
#include "common/table.h"
#include "ordering/ordering.h"
#include "solver/runner.h"
#include "sparse/generators.h"

using namespace loadex;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const std::string name = flags.getString("problem", "BMWCRA_1");
  const double scale = flags.getDouble("scale", 0.25);
  const int procs = static_cast<int>(flags.getInt("procs", 8));
  const auto okind =
      ordering::parseOrderingKind(flags.getString("ordering", "nd"));
  const int depth = static_cast<int>(flags.getInt("depth", 40));

  const auto problem = sparse::paperProblem(name, scale);
  if (!problem) {
    std::cerr << "unknown problem: " << name << "\n";
    return 1;
  }
  const auto analysis = solver::analyzeProblem(*problem, okind);

  Table info("Problem & analysis");
  info.setHeader({"field", "value"});
  info.addRow({"problem", problem->name + " (" + problem->description + ")"});
  info.addRow({"order", Table::fmtInt(problem->pattern.n())});
  info.addRow({"nnz", Table::fmtInt(problem->pattern.nnzFull())});
  info.addRow({"ordering", ordering::orderingKindName(okind)});
  info.addRow({"factor nnz", Table::fmtInt(analysis.factor_nnz)});
  info.addRow({"flop estimate", Table::fmt(analysis.factor_flops, 0)});
  info.addRow({"tree nodes", Table::fmtInt(analysis.tree.size())});
  info.addRow({"tree height", Table::fmtInt(analysis.tree.height())});
  info.addRow({"max front", Table::fmtInt(analysis.tree.maxFront())});
  info.print(std::cout);

  solver::MappingOptions mopts;
  mopts.nprocs = procs;
  const auto plan = solver::planTree(analysis.tree, problem->symmetric, mopts);
  std::map<solver::NodeType, int> census;
  for (const auto& np : plan.nodes) census[np.type]++;
  Table census_t("Static plan on " + std::to_string(procs) + " processes");
  census_t.setHeader({"node type", "count"});
  for (const auto& [type, count] : census)
    census_t.addRow({solver::nodeTypeName(type), Table::fmtInt(count)});
  census_t.addRow({"dynamic decisions", Table::fmtInt(plan.dynamic_decisions)});
  census_t.print(std::cout);

  std::cout << "Assembly tree (top " << depth << " fronts):\n"
            << analysis.tree.render(depth) << "\n";
  return 0;
}
