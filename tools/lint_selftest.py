#!/usr/bin/env python3
"""Self-test for loadex-lint: every rule is exercised against synthetic
repo trees — one fixture where the rule must fire and one where the same
construct is legal (exempt path, allowed directory, or correct form).

Fixtures are materialised as real directory trees under a tempdir because
the rules key on repo-relative paths (`src/rt/` vs `src/core/`,
`src/common/sync.h`, ...); lint runs in `--root <tmpdir> --json` mode and
the JSON findings are asserted on. A violating fixture must produce
findings for exactly its target rule (anything else firing means the
fixture leaks into a neighbouring rule); a passing fixture must be clean.

Run directly or via `ctest -L lint`.
"""

from __future__ import annotations

import contextlib
import io
import json
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import loadex_lint  # noqa: E402


# A stand-in for src/common/sync.h: enough for parse_lock_ranks() and for
# the raw-sync exemption to have something to exempt.
SYNC_H = """#pragma once
#include <mutex>
namespace loadex::sync {
enum class LockRank : int {
  kLow = 10,
  kHigh = 20,
};
class Mutex {
 public:
  void lock();
  void unlock();
 private:
  std::mutex mu_;
};
class MutexLock {};
}  // namespace loadex::sync
"""

# Coherent StateTag/MechanismKind dispatch tree (the exhaustiveness rules
# read these fixed paths); also hosts the payload-cast exemption.
CORE_OK = {
    "src/core/payloads.h": """#pragma once
enum class StateTag : int { kLoad = 0, kSnap = 1 };
inline const char* stateTagName(StateTag t) {
  switch (t) {
    case StateTag::kLoad: return "load";
    case StateTag::kSnap: return "snap";
  }
  return "?";
}
struct BasePayload {};
inline BasePayload* reCast(BasePayload* p) {
  return dynamic_cast<BasePayload*>(p);
}
""",
    "src/core/naive.cpp": """void handleState(int t);
void handleStateNaive(StateTag t) {
  switch (t) {
    case StateTag::kLoad: break;
    case StateTag::kSnap: break;
  }
}
""",
    "src/core/increment.cpp": """void handleState(StateTag t) {
  switch (t) {
    case StateTag::kLoad: break;
    case StateTag::kSnap: break;
  }
}
""",
    "src/core/snapshot.cpp": """void handleState(StateTag t) {
  switch (t) {
    case StateTag::kLoad: break;
    case StateTag::kSnap: break;
  }
}
""",
    "src/core/mechanism.h": """#pragma once
enum class MechanismKind : int { kNaive = 0 };
""",
    "src/core/mechanism.cpp": """const char* mechanismKindName(MechanismKind k) {
  switch (k) {
    case MechanismKind::kNaive: return "naive";
  }
  return "?";
}
""",
    "src/core/binding.cpp": """int makeMechanism(MechanismKind k) {
  switch (k) {
    case MechanismKind::kNaive: return 1;
  }
  return 0;
}
""",
}

CORE_STALE_CASE = dict(CORE_OK)
CORE_STALE_CASE["src/core/snapshot.cpp"] = """void handleState(StateTag t) {
  switch (t) {
    case StateTag::kLoad: break;
  }
}
"""

CORE_FACTORY_GAP = dict(CORE_OK)
CORE_FACTORY_GAP["src/core/binding.cpp"] = """int makeMechanism(MechanismKind k) {
  (void)k;
  return 0;
}
"""

# Coherent PolicyKind dispatch pair for the service workload (the
# policykind-exhaustive rule reads these fixed paths).
SVC_OK = {
    "src/svc/policy.h": """#pragma once
enum class PolicyKind : int { kRandom = 0, kNaive = 1 };
""",
    "src/svc/policy.cpp": """const char* policyKindName(PolicyKind k) {
  switch (k) {
    case PolicyKind::kRandom: return "random";
    case PolicyKind::kNaive: return "naive";
  }
  return "?";
}
int makePolicy(PolicyKind k) {
  switch (k) {
    case PolicyKind::kRandom: return 1;
    case PolicyKind::kNaive: return 2;
  }
  return 0;
}
""",
}

SVC_FACTORY_GAP = dict(SVC_OK)
SVC_FACTORY_GAP["src/svc/policy.cpp"] = """const char* policyKindName(PolicyKind k) {
  switch (k) {
    case PolicyKind::kRandom: return "random";
    case PolicyKind::kNaive: return "naive";
  }
  return "?";
}
int makePolicy(PolicyKind k) {
  switch (k) {
    case PolicyKind::kRandom: return 1;
  }
  return 0;
}
"""

# Wire codec covering the CORE_OK StateTag enum in both directions (the
# wirecodec-exhaustive rule reads this fixed path next to the core tree).
NET_WIRE_OK = dict(CORE_OK)
NET_WIRE_OK["src/net/wire.cpp"] = """void encodeStatePayload(StateTag tag) {
  switch (tag) {
    case StateTag::kLoad: break;
    case StateTag::kSnap: break;
  }
}
int decodeStatePayload(StateTag tag) {
  switch (tag) {
    case StateTag::kLoad: return 1;
    case StateTag::kSnap: return 2;
  }
  return 0;
}
"""

NET_WIRE_DECODE_GAP = dict(NET_WIRE_OK)
NET_WIRE_DECODE_GAP["src/net/wire.cpp"] = """void encodeStatePayload(StateTag tag) {
  switch (tag) {
    case StateTag::kLoad: break;
    case StateTag::kSnap: break;
  }
}
int decodeStatePayload(StateTag tag) {
  switch (tag) {
    case StateTag::kLoad: return 1;
  }
  return 0;
}
"""

LOCK_ORDER_PROLOGUE = """#include "common/sync.h"
loadex::sync::Mutex low_{loadex::sync::LockRank::kLow};
loadex::sync::Mutex high_{loadex::sync::LockRank::kHigh};
int guarded_low_ LOADEX_GUARDED_BY(low_);
int guarded_high_ LOADEX_GUARDED_BY(high_);
"""

CASES = [
    # rule, fixture files, expected rule to fire (None = must be clean)
    ("banned-randomness fires", {
        "src/a.cpp": "int f() { return rand(); }\n",
    }, "banned-randomness"),
    ("banned-randomness exempt in rng.cpp", {
        "src/common/rng.cpp": "#include <random>\nstd::mt19937 eng_;\n",
    }, None),

    ("banned-wallclock fires", {
        "src/a.cpp":
            "int f() { return std::chrono::steady_clock::now(), 0; }\n",
    }, "banned-wallclock"),
    ("banned-wallclock exempt in rt clock", {
        "src/rt/clock.cpp":
            "int f() { return std::chrono::steady_clock::now(), 0; }\n",
    }, None),

    ("banned-threading fires outside rt", {
        "src/core/a.cpp": "int f() { std::thread t; return 0; }\n",
    }, "banned-threading"),
    ("banned-threading legal in rt", {
        "src/rt/a.cpp": "int f() { std::thread t; return 0; }\n",
    }, None),

    ("raw-sync fires even in rt", {
        "src/rt/a.cpp": "#include <mutex>\nstd::mutex mu_;\n",
    }, "raw-sync"),
    ("raw-sync exempt in the sync layer", {
        "src/common/sync.h": SYNC_H,
    }, None),

    ("thread-lifecycle fires on detach", {
        "src/rt/a.cpp": "void f(std::thread& t) { t.detach(); }\n",
    }, "thread-lifecycle"),
    ("thread-lifecycle join legal in world.cpp", {
        "src/rt/world.cpp": "void f(std::thread& t) { t.join(); }\n",
    }, None),

    ("payload-cast fires outside the helper", {
        "src/sim/a.cpp":
            "void* f(void* q) { return dynamic_cast<FooPayload*>(q); }\n",
    }, "payload-cast"),
    ("payload-cast exempt inside payloads.h", CORE_OK, None),

    ("unordered-iteration fires in core", {
        "src/core/a.cpp": "#include <unordered_map>\n"
                          "std::unordered_map<int, int> m_;\n"
                          "int f() {\n"
                          "  int s = 0;\n"
                          "  for (const auto& kv : m_) s += kv.second;\n"
                          "  return s;\n"
                          "}\n",
    }, "unordered-iteration"),
    ("unordered-iteration legal in rt", {
        "src/rt/a.cpp": "#include <unordered_map>\n"
                        "std::unordered_map<int, int> m_;\n"
                        "int f() {\n"
                        "  int s = 0;\n"
                        "  for (const auto& kv : m_) s += kv.second;\n"
                        "  return s;\n"
                        "}\n",
    }, None),

    ("naked-new-delete fires", {
        "src/a.cpp": "int* f() { return new int(3); }\n",
    }, "naked-new-delete"),
    ("naked-new-delete clean with make_unique", {
        "src/a.cpp": "#include <memory>\n"
                     "std::unique_ptr<int> f() "
                     "{ return std::make_unique<int>(3); }\n",
    }, None),

    ("pragma-once fires", {
        "src/a.h": "struct A {};\n",
    }, "pragma-once"),
    ("pragma-once clean", {
        "src/a.h": "#pragma once\nstruct A {};\n",
    }, None),

    ("statetag-exhaustive fires on a dispatch gap", CORE_STALE_CASE,
     "statetag-exhaustive"),
    ("statetag-exhaustive clean", CORE_OK, None),

    ("mechanismkind-exhaustive fires on a factory gap", CORE_FACTORY_GAP,
     "mechanismkind-exhaustive"),
    ("mechanismkind-exhaustive clean", CORE_OK, None),

    ("policykind-exhaustive fires on a factory gap", SVC_FACTORY_GAP,
     "policykind-exhaustive"),
    ("policykind-exhaustive clean", SVC_OK, None),

    ("raw-socket fires outside src/net", {
        "src/sim/a.cpp": "int f() { return ::socket(2, 1, 0); }\n"
                         "int g(int fd) { return epoll_wait(fd, 0, 8, -1); }\n",
    }, "raw-socket"),
    ("raw-socket legal in src/net, members/qualified names exempt", {
        "src/net/socket.cpp":
            "int f() { return ::socket(2, 1, 0); }\n",
        "src/rt/a.cpp":
            "void f(World& w, Mech* m) { w.bind(m); }\n"
            "auto g() { return std::bind(h, 1); }\n",
    }, None),

    ("wirecodec-exhaustive fires on a decode gap", NET_WIRE_DECODE_GAP,
     "wirecodec-exhaustive"),
    ("wirecodec-exhaustive clean", NET_WIRE_OK, None),

    ("trace-macro-guard fires on an unguarded macro", {
        "src/obs/macros.h": "#pragma once\n"
                            "#define LOADEX_TRACE_PING(...) \\\n"
                            "  do { ping(__VA_ARGS__); } while (0)\n",
    }, "trace-macro-guard"),
    ("trace-macro-guard clean on the guarded shape", {
        "src/obs/macros.h":
            "#pragma once\n"
            "#define LOADEX_TRACE_PING(...) \\\n"
            "  do { \\\n"
            "    if (auto* lx_tr_ = ::loadex::obs::traceRecorder()) { \\\n"
            "      lx_tr_->ping(__VA_ARGS__); \\\n"
            "    } \\\n"
            "  } while (0)\n",
    }, None),

    ("sync-annotation-coverage fires on a bare mutex", {
        "src/rt/a.h": "#pragma once\n"
                      "class A {\n"
                      "  loadex::sync::Mutex mu_;\n"
                      "};\n",
    }, "sync-annotation-coverage"),
    ("sync-annotation-coverage clean when annotated", {
        "src/rt/a.h": "#pragma once\n"
                      "class A {\n"
                      "  loadex::sync::Mutex mu_;\n"
                      "  int x_ LOADEX_GUARDED_BY(mu_);\n"
                      "};\n",
    }, None),

    ("lock-hierarchy fires on a descending nesting", {
        "src/common/sync.h": SYNC_H,
        "src/rt/a.cpp": LOCK_ORDER_PROLOGUE +
            "void f() {\n"
            "  loadex::sync::MutexLock a(high_);\n"
            "  loadex::sync::MutexLock b(low_);\n"
            "}\n",
    }, "lock-hierarchy"),
    ("lock-hierarchy clean on an ascending nesting", {
        "src/common/sync.h": SYNC_H,
        "src/rt/a.cpp": LOCK_ORDER_PROLOGUE +
            "void f() {\n"
            "  loadex::sync::MutexLock a(low_);\n"
            "  loadex::sync::MutexLock b(high_);\n"
            "}\n"
            "void g() {\n"
            "  loadex::sync::MutexLock a(high_);\n"
            "}\n"
            "void h() {\n"
            "  loadex::sync::MutexLock a(low_);\n"
            "}\n",
    }, None),

    ("lint-allow fires on stale and unknown suppressions", {
        "src/a.cpp":
            "int f() { return 0; }  // loadex-lint: allow(banned-randomness)\n"
            "int g() { return 1; }  // loadex-lint: allow(not-a-rule)\n",
    }, "lint-allow"),
    ("lint-allow clean when the suppression earns its keep", {
        "src/a.cpp":
            "int f() { return rand(); }"
            "  // loadex-lint: allow(banned-randomness)\n",
    }, None),
]


def run_lint(root: Path) -> tuple[int, dict]:
    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        rc = loadex_lint.main(["--root", str(root), "--json"])
    return rc, json.loads(buf.getvalue())


def run_case(name: str, files: dict[str, str],
             expect: str | None) -> str | None:
    """Returns an error description, or None if the case holds."""
    with tempfile.TemporaryDirectory(prefix="loadex-lint-selftest-") as td:
        root = Path(td)
        for rel, content in files.items():
            p = root / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(content, encoding="utf-8")
        rc, out = run_lint(root)
    fired = sorted({f["rule"] for f in out["findings"]})
    if expect is None:
        if rc != 0 or out["findings"]:
            return f"expected clean, got rc={rc} rules={fired}: " \
                   f"{out['findings']}"
    else:
        if rc != 1 or not out["findings"]:
            return f"expected rc=1 with findings, got rc={rc}"
        if fired != [expect]:
            return f"expected only [{expect}], got {fired}: " \
                   f"{out['findings']}"
    return None


def main() -> int:
    failures = []
    for name, files, expect in CASES:
        err = run_case(name, files, expect)
        status = "ok" if err is None else "FAIL"
        print(f"[{status}] {name}")
        if err is not None:
            print(f"       {err}")
            failures.append(name)
    print(f"lint-selftest: {len(CASES) - len(failures)}/{len(CASES)} "
          "cases passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
