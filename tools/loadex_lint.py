#!/usr/bin/env python3
"""loadex-lint: repo-specific static checks for the loadex codebase.

The simulator's core promise is bit-for-bit deterministic replay, and the
mechanisms' core promise is that every protocol message is accounted for.
Generic linters cannot check either, so this tool enforces the repo rules
that protect them:

  banned-randomness      rand()/srand()/std::random_device and raw engine
                         construction outside src/common/rng — all random
                         draws must flow through the seeded loadex::Rng
                         streams or replay breaks.
  banned-wallclock       std::chrono::{system,steady,high_resolution}_clock,
                         time(), clock(), gettimeofday — simulated time is
                         the only clock; wall time makes runs unreproducible.
                         The real-threads runtime's clock wrapper
                         (src/rt/clock.{h,cpp}) is the single exemption:
                         everything else in src/rt reads time through it.
  banned-threading       std::thread / this_thread / futures / latches in
                         src/ outside src/rt — the simulator is
                         single-threaded by construction, and real
                         concurrency lives only in the rt runtime. (Tests,
                         benches and examples may use threads freely; the
                         annotated sync layer src/common/sync.h is the one
                         src/ exemption.)
  raw-sync               std::mutex / condition variables / lock guards and
                         the <mutex>/<condition_variable>/<shared_mutex>
                         includes anywhere in src/ outside src/common/sync.h
                         — all locking goes through the annotated
                         sync::Mutex/MutexLock/CondVar wrappers so the
                         Clang thread-safety build and the debug
                         owner/hierarchy checks see every acquisition.
  sync-annotation-coverage  every `sync::Mutex` member declared in src/ must
                         be referenced by at least one LOADEX_* capability
                         annotation (LOADEX_GUARDED_BY / LOADEX_REQUIRES /
                         LOADEX_EXCLUDES / ...) in the same file — an
                         unannotated mutex guards nothing the analysis can
                         check.
  lock-hierarchy         lexically nested sync::MutexLock acquisitions must
                         acquire strictly ascending LockRank values (the
                         ranks declared in src/common/sync.h and stamped on
                         each `sync::Mutex name{LockRank::...}` member).
                         This is the static face of the runtime hierarchy
                         check in sync.h; cross-function nestings are the
                         runtime check's job.
  thread-lifecycle       .detach() and std::terminate() anywhere in src/,
                         and .join() in src/ outside RtWorld/Supervisor
                         (src/rt/world.cpp, src/rt/supervisor.cpp) — every
                         rt thread must retire through the audited join
                         paths so drain()/stop() can guarantee quiescence;
                         a detached thread or a mid-run terminate breaks
                         the accounting invariants. (Tests, benches and
                         examples may join their own helper threads.)
  payload-cast           dynamic_cast to a *Payload type outside the
                         payloadCast<T> helper (src/core/payloads.h) — the
                         helper is what makes the debug-checked/release-
                         static downcast policy a single point of truth.
  unordered-iteration    iterating an unordered_{map,set} in src/core or
                         src/sim — iteration order is implementation-defined,
                         so any protocol or scheduling decision derived from
                         it is nondeterministic across platforms.
  naked-new-delete       raw new/delete expressions — ownership must be
                         expressed with unique_ptr/shared_ptr/containers.
  pragma-once            every header must contain #pragma once.
  statetag-exhaustive    the StateTag enum, stateTagName(), and each
                         mechanism's handleState() dispatch must stay in
                         sync: no stale case labels, no enumerator missing
                         from the name table, every enumerator consumed by
                         at least one mechanism, and every dispatch either
                         names all tags or ends in a rejecting default.
  mechanismkind-exhaustive  same for MechanismKind across mechanismKindName()
                         and the makeMechanism() factory.
  policykind-exhaustive  same for the service workload's PolicyKind
                         (src/svc/policy.h) across policyKindName() and the
                         makePolicy() factory — a policy added to the enum
                         but missing from either is a silent dispatch gap.
  raw-socket             socket()/bind()/listen()/connect()/accept() and the
                         epoll_* syscalls outside src/net — every kernel
                         socket touch goes through the typed RAII helpers
                         (src/net/socket.h), so fd ownership, non-blocking
                         setup and error mapping have one point of truth
                         and the rest of the repo stays host-API-free.
  wirecodec-exhaustive   the wire codec (src/net/wire.cpp) must dispatch on
                         every StateTag in both directions: a tag missing
                         from encodeStatePayload() or decodeStatePayload()
                         is a message kind that silently cannot cross the
                         process boundary (or a stale case after an enum
                         change).
  trace-macro-guard      every LOADEX_TRACE_* / LOADEX_METRIC macro defined
                         in src/obs must wrap its body in the
                         `do { if (auto* x = ::loadex::obs::...()) {` null
                         guard, so a disabled trace evaluates none of its
                         arguments (the zero-overhead-when-off promise).

A finding on one line can be silenced with a trailing
`// loadex-lint: allow(<rule>)` comment; `allow(all)` silences every rule.
Suppressions are themselves checked (rule `lint-allow`): an allow() naming
an unknown rule, or one that suppresses no finding on its line, is a
violation — stale suppressions rot into blanket ones otherwise.

Usage: loadex_lint.py [--root DIR] [--json] [FILES...]
Exits non-zero if any violation is found. --json emits the findings as a
machine-readable object on stdout instead of the human-readable lines.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

CXX_SUFFIXES = {".h", ".hpp", ".cpp", ".cc"}
SCAN_DIRS = ("src", "tests", "bench", "examples")

# The annotated sync layer: the only src/ file that may spell raw std
# primitives (it wraps them).
SYNC_HEADER = "src/common/sync.h"

ALLOW_RE = re.compile(r"//\s*loadex-lint:\s*allow\(([a-z\-, ]+)\)")

# Every rule an allow() comment may legally name (`lint-allow` itself is
# not suppressible — a suppression of the suppression checker is exactly
# the rot it exists to catch).
KNOWN_RULES = frozenset({
    "banned-randomness", "banned-wallclock", "banned-threading",
    "thread-lifecycle", "payload-cast", "unordered-iteration",
    "naked-new-delete", "pragma-once", "statetag-exhaustive",
    "mechanismkind-exhaustive", "policykind-exhaustive",
    "trace-macro-guard", "raw-sync", "raw-socket",
    "wirecodec-exhaustive",
    "sync-annotation-coverage", "lock-hierarchy", "all",
})


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Replace comments and string/char literal contents with spaces,
    preserving line structure so reported line numbers stay correct."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(c)
            elif c == "'":
                state = "char"
                out.append(c)
            else:
                out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            elif c == "\n":  # unterminated; keep line structure
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def allowed_rules(raw_line: str) -> set[str]:
    m = ALLOW_RE.search(raw_line)
    if not m:
        return set()
    return {r.strip() for r in m.group(1).split(",")}


# ---------------------------------------------------------------------------
# Per-line rules
# ---------------------------------------------------------------------------

RANDOMNESS_RE = re.compile(
    r"(?<![\w:])(?:std::)?(?:rand|srand|rand_r|drand48)\s*\("
    r"|std::random_device"
    r"|std::(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine)\b"
)
WALLCLOCK_RE = re.compile(
    r"std::chrono::(?:system_clock|steady_clock|high_resolution_clock)"
    r"|(?<![\w:])(?:::)?gettimeofday\s*\("
    r"|(?<![\w:.>])(?:std::)?time\s*\(\s*(?:NULL|nullptr|0|&)"
    r"|(?<![\w:.>])(?:std::)?clock\s*\(\s*\)"
)
NEW_RE = re.compile(r"(?<![\w:.])new\s+(?:\(|[A-Za-z_(])")
DELETE_RE = re.compile(r"(?<![\w:.])delete(?:\s*\[\s*\])?\s+[A-Za-z_(*]")
# Split across two rules: thread-like machinery is banned-threading
# (src/ outside src/rt); lock-like primitives are raw-sync (all of src/,
# the sync layer wraps them).
THREADING_RE = re.compile(
    r"std::(?:jthread\b|thread\b|this_thread\b"
    r"|promise\b|future\b|async\b|barrier\b|latch\b)"
)
RAW_SYNC_RE = re.compile(
    r"std::(?:mutex\b|recursive_mutex\b|timed_mutex\b"
    r"|shared_mutex\b|shared_timed_mutex\b|condition_variable\w*"
    r"|lock_guard\b|unique_lock\b|scoped_lock\b|shared_lock\b)"
)
SYNC_INCLUDE_RE = re.compile(
    r"^\s*#\s*include\s*<(?:mutex|condition_variable|shared_mutex)>")
PAYLOAD_CAST_RE = re.compile(r"dynamic_cast\s*<[^>]*Payload")
# Thread lifecycle: node threads are retired only by RtWorld/Supervisor
# joins. A detached thread escapes drain()/stop()'s join guarantees (its
# writes are never ordered before stats reads), and std::terminate tears
# the process down mid-invariant; neither has a legitimate call site.
# Raw socket/epoll syscall entry points. The single-char lookbehind keeps
# member calls (`world.bind(`, `conn->connect(`) and qualified names
# (`std::bind`) out: an optional leading `::` is part of the match, so a
# preceding word char, `.`, `>` or `:` rejects the position either way.
RAW_SOCKET_RE = re.compile(
    r"(?<![\w:.>])(?:::)?(?:socket|bind|listen|connect|accept4?)\s*\("
    r"|(?<![\w:.>])epoll_(?:create1?|ctl|wait)\s*\(")
THREAD_DETACH_RE = re.compile(r"\.\s*detach\s*\(")
TERMINATE_RE = re.compile(r"(?<![\w:])std::terminate\s*\(")
THREAD_JOIN_RE = re.compile(r"\.\s*join\s*\(")

RANDOMNESS_ALLOWED = ("src/common/rng.h", "src/common/rng.cpp")
# The rt runtime's clock wrapper is the one legal window onto host time.
WALLCLOCK_ALLOWED = ("src/rt/clock.h", "src/rt/clock.cpp")
# payloadCast<T> itself must spell the dynamic_cast it encapsulates.
PAYLOAD_CAST_ALLOWED = ("src/core/payloads.h",)
# The only two files allowed to join a node/supervisor thread. (Tests and
# benches may join their own helper threads; the src-side restriction is
# what keeps every rt thread's retirement on the audited paths.)
THREAD_JOIN_ALLOWED = ("src/rt/world.cpp", "src/rt/supervisor.cpp")


def rng_exempt(rel: str) -> bool:
    return rel in RANDOMNESS_ALLOWED


def raw_socket_banned(rel: str) -> bool:
    """Kernel socket/epoll touches are confined to src/net: everywhere
    else (src, tests, benches, examples alike) goes through the RAII
    helpers in src/net/socket.h."""
    return not rel.startswith("src/net/")


def threading_banned(rel: str) -> bool:
    """Real concurrency is confined to the rt runtime: everywhere else in
    src/ a thread or a lock is either nondeterminism or dead weight. The
    sync layer wraps std primitives, so it is exempt (it spells
    std::thread::id / std::this_thread for its owner tracking)."""
    return (rel.startswith("src/") and not rel.startswith("src/rt/")
            and rel != SYNC_HEADER)


def raw_sync_banned(rel: str) -> bool:
    """Everywhere in src/ — including src/rt — locking goes through the
    annotated wrappers, so the TSA build and the debug owner/hierarchy
    checks see every acquisition."""
    return rel.startswith("src/") and rel != SYNC_HEADER


def check_lines(rel: str, path: Path, code_lines: list[str],
                findings: list[Finding]) -> None:
    # Findings are appended unconditionally; allow() suppressions are
    # applied (and audited for staleness) by filter_allowed() in main.
    for lineno0, code in enumerate(code_lines):
        lineno = lineno0 + 1
        if not rng_exempt(rel) and RANDOMNESS_RE.search(code):
            findings.append(Finding(
                path, lineno, "banned-randomness",
                "unseeded/raw randomness; draw from a loadex::Rng "
                "stream (src/common/rng.h) so runs stay replayable"))
        if rel not in WALLCLOCK_ALLOWED and WALLCLOCK_RE.search(code):
            findings.append(Finding(
                path, lineno, "banned-wallclock",
                "wall-clock time source; simulated time "
                "(sim::World::now) is the only clock — the rt runtime "
                "reads time via rt::MonotonicClock (src/rt/clock.h)"))
        if threading_banned(rel) and THREADING_RE.search(code):
            findings.append(Finding(
                path, lineno, "banned-threading",
                "threading primitive outside src/rt; the simulator is "
                "single-threaded by construction — real concurrency "
                "belongs in the rt runtime"))
        if raw_sync_banned(rel) and (RAW_SYNC_RE.search(code)
                                     or SYNC_INCLUDE_RE.search(code)):
            findings.append(Finding(
                path, lineno, "raw-sync",
                "raw std synchronisation primitive; lock through the "
                "annotated sync::Mutex/MutexLock/CondVar wrappers "
                "(src/common/sync.h) so the thread-safety analysis and "
                "the debug owner/hierarchy checks see the acquisition"))
        if rel.startswith("src/"):
            if THREAD_DETACH_RE.search(code):
                findings.append(Finding(
                    path, lineno, "thread-lifecycle",
                    "detach() in src/; a detached thread escapes the "
                    "join paths drain()/stop() rely on — let RtWorld or "
                    "the Supervisor own the thread's retirement"))
            if TERMINATE_RE.search(code):
                findings.append(Finding(
                    path, lineno, "thread-lifecycle",
                    "std::terminate() in src/; tearing the process down "
                    "mid-run voids every accounting invariant — fail via "
                    "LOADEX_EXPECT or propagate an error instead"))
            if rel not in THREAD_JOIN_ALLOWED and THREAD_JOIN_RE.search(code):
                findings.append(Finding(
                    path, lineno, "thread-lifecycle",
                    "join() outside RtWorld/Supervisor; thread retirement "
                    "in src/ is confined to src/rt/world.cpp and "
                    "src/rt/supervisor.cpp so quiescence stays auditable"))
        if raw_socket_banned(rel) and RAW_SOCKET_RE.search(code):
            findings.append(Finding(
                path, lineno, "raw-socket",
                "raw socket/epoll syscall outside src/net; go through "
                "the typed RAII helpers (src/net/socket.h) so fd "
                "ownership and error handling stay in one place"))
        if rel not in PAYLOAD_CAST_ALLOWED and PAYLOAD_CAST_RE.search(code):
            findings.append(Finding(
                path, lineno, "payload-cast",
                "dynamic_cast to a payload type; use payloadCast<T> "
                "(src/core/payloads.h) so the checked-downcast policy "
                "stays in one place"))
        if NEW_RE.search(code):
            findings.append(Finding(
                path, lineno, "naked-new-delete",
                "raw new expression; use std::make_unique/make_shared "
                "or a container"))
        if DELETE_RE.search(code):
            findings.append(Finding(
                path, lineno, "naked-new-delete",
                "raw delete expression; express ownership with smart "
                "pointers"))


# ---------------------------------------------------------------------------
# unordered-container iteration in decision paths (src/core, src/sim)
# ---------------------------------------------------------------------------

UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;{()]*>\s*&?\s*"
    r"(\w+)\s*[;={(]")
RANGE_FOR_RE = re.compile(r"for\s*\([^;)]*:\s*(?:\*?\s*)?([\w.\->]+)\s*\)")
DIRECT_ITER_RE = re.compile(
    r"for\s*\([^;]*:\s*[^)]*unordered_(?:map|set)")


def check_unordered_iteration(rel: str, path: Path, code_lines: list[str],
                              findings: list[Finding]) -> None:
    if not (rel.startswith("src/core/") or rel.startswith("src/sim/")
            or rel.startswith("src/obs/")):
        return
    unordered_names: set[str] = set()
    for code in code_lines:
        for m in UNORDERED_DECL_RE.finditer(code):
            unordered_names.add(m.group(1))
    # Member names also appear without the trailing underscore at use sites?
    # No: C++ names match exactly; just look up the declared spelling.
    for lineno0, code in enumerate(code_lines):
        lineno = lineno0 + 1
        hit = DIRECT_ITER_RE.search(code) is not None
        if not hit:
            m = RANGE_FOR_RE.search(code)
            if m:
                # `for (x : foo.bar_)` → compare the last path component.
                target = re.split(r"[.>]", m.group(1))[-1]
                hit = target in unordered_names
        if hit:
            findings.append(Finding(
                path, lineno, "unordered-iteration",
                "iteration over an unordered container in a protocol/"
                "scheduling path; order is implementation-defined — use a "
                "std::map/std::vector or iterate ranks 0..nprocs"))


# ---------------------------------------------------------------------------
# Sync-layer rules: annotation coverage and lexical lock ordering
# ---------------------------------------------------------------------------

# A sync::Mutex *member/variable* declaration. `\s+` after Mutex keeps
# `sync::Mutex&` returns/params out (the `&` binds to the type).
MUTEX_DECL_RE = re.compile(r"(?:::)?(?:loadex::)?sync::Mutex\s+(\w+)\s*[;{=(]")
# Any capability annotation whose argument list may reference a mutex.
ANNOTATION_RE = re.compile(
    r"LOADEX_(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES|ACQUIRE|RELEASE"
    r"|TRY_ACQUIRE|EXCLUDES|RETURN_CAPABILITY|ASSERT_CAPABILITY"
    r"|ASSERT_HELD)\s*\(([^)]*)\)")
# A ranked mutex declaration: `sync::Mutex name{LockRank::kSomething}`.
RANKED_DECL_RE = re.compile(
    r"(?:::)?(?:loadex::)?sync::Mutex\s+(\w+)\s*\{\s*"
    r"(?:(?:::)?(?:loadex::)?sync::)?LockRank::(k\w+)")
# A scoped acquisition. The argument may be an expression
# (`lx_mx_->mu()`); only the last path component is resolved against the
# ranked declarations, anything else is outside this rule's reach.
MUTEXLOCK_RE = re.compile(
    r"(?:(?:::)?(?:loadex::)?sync::)?MutexLock\s+\w+\s*\(\s*([^),;]+)")
LOCK_RANK_ENUM_RE = re.compile(
    r"enum\s+class\s+LockRank\s*:\s*int\s*\{(.*?)\}", re.DOTALL)


def parse_lock_ranks(root: Path) -> dict[str, int]:
    """LockRank enumerator -> numeric rank, parsed from the sync header."""
    sync = root / SYNC_HEADER
    if not sync.is_file():
        return {}
    text = strip_comments_and_strings(sync.read_text(encoding="utf-8"))
    m = LOCK_RANK_ENUM_RE.search(text)
    if not m:
        return {}
    return {name: int(val) for name, val in
            re.findall(r"\b(k\w+)\s*=\s*(\d+)", m.group(1))}


def check_sync_annotations(rel: str, path: Path, code_lines: list[str],
                           findings: list[Finding]) -> None:
    """Every sync::Mutex member declared in src/ must appear in at least
    one capability annotation in the same file — an unannotated mutex is
    invisible to the TSA build and guards nothing it can check."""
    if not rel.startswith("src/") or rel == SYNC_HEADER:
        return
    annotated: set[str] = set()
    for code in code_lines:
        for m in ANNOTATION_RE.finditer(code):
            annotated.update(re.findall(r"\b([A-Za-z_]\w*)\b", m.group(1)))
    for lineno0, code in enumerate(code_lines):
        for m in MUTEX_DECL_RE.finditer(code):
            name = m.group(1)
            if name not in annotated:
                findings.append(Finding(
                    path, lineno0 + 1, "sync-annotation-coverage",
                    f"sync::Mutex `{name}` is referenced by no LOADEX_* "
                    "capability annotation in this file; annotate what it "
                    "guards (LOADEX_GUARDED_BY) or which methods take it "
                    "(LOADEX_REQUIRES/LOADEX_EXCLUDES) so the "
                    "thread-safety build can check its discipline"))


def check_lock_hierarchy(rel: str, path: Path, code_lines: list[str],
                         lock_ranks: dict[str, int],
                         findings: list[Finding]) -> None:
    """Lexically nested MutexLock acquisitions must take strictly
    ascending ranks. Brace-depth tracking scopes each guard; only
    acquisitions of mutexes whose ranked declaration is visible in the
    same file participate (expressions like `reg->mu()` are the runtime
    check's job, as are nestings across function calls)."""
    if not lock_ranks or rel == SYNC_HEADER:
        return
    mutex_rank: dict[str, int] = {}
    for code in code_lines:
        for m in RANKED_DECL_RE.finditer(code):
            rank = lock_ranks.get(m.group(2))
            if rank is not None:
                mutex_rank[m.group(1)] = rank
    if not mutex_rank:
        return
    depth = 0
    held: list[tuple[int, int, str, int]] = []  # (depth, rank, name, line)
    for lineno0, code in enumerate(code_lines):
        lineno = lineno0 + 1
        events: list[tuple[int, str, str]] = []
        for m in MUTEXLOCK_RE.finditer(code):
            events.append((m.start(), "acquire", m.group(1).strip()))
        for i, ch in enumerate(code):
            if ch in "{}":
                events.append((i, ch, ""))
        events.sort(key=lambda e: e[0])
        for _, kind, arg in events:
            if kind == "{":
                depth += 1
            elif kind == "}":
                depth -= 1
                while held and held[-1][0] > depth:
                    held.pop()
            else:
                name = re.split(r"[.>]", arg)[-1].strip()
                rank = mutex_rank.get(name)
                if rank is None:
                    continue
                if held and held[-1][1] >= rank:
                    _, prev_rank, prev_name, prev_line = held[-1]
                    findings.append(Finding(
                        path, lineno, "lock-hierarchy",
                        f"`{name}` (rank {rank}) acquired while holding "
                        f"`{prev_name}` (rank {prev_rank}, line "
                        f"{prev_line}); nested acquisitions must take "
                        "strictly ascending LockRank values — see the "
                        "hierarchy table in src/common/sync.h"))
                held.append((depth, rank, name, lineno))


# ---------------------------------------------------------------------------
# pragma once
# ---------------------------------------------------------------------------

def check_pragma_once(path: Path, text: str, findings: list[Finding]) -> None:
    if path.suffix not in (".h", ".hpp"):
        return
    if "#pragma once" not in text:
        findings.append(Finding(
            path, 1, "pragma-once", "header is missing #pragma once"))


# ---------------------------------------------------------------------------
# Enum dispatch exhaustiveness
# ---------------------------------------------------------------------------

def parse_enum(text: str, enum_name: str) -> list[str]:
    m = re.search(r"enum\s+class\s+" + enum_name + r"\b[^{]*\{(.*?)\}",
                  text, re.DOTALL)
    if not m:
        return []
    body = strip_comments_and_strings(m.group(1))
    return re.findall(r"\b(k\w+)\b", body)


def case_labels(text: str, enum_name: str) -> set[str]:
    return set(re.findall(r"case\s+" + enum_name + r"::(k\w+)", text))


def has_rejecting_default(text: str, fn_name: str) -> bool:
    """True if fn_name's body has a `default:` that raises a contract error."""
    m = re.search(fn_name + r"\s*\([^;{]*\)[^;{]*\{", text)
    if not m:
        return False
    body = text[m.end():]
    d = body.find("default:")
    if d < 0:
        return False
    return "LOADEX_EXPECT" in body[d:d + 300] or "throw" in body[d:d + 300]


def check_enum_dispatch(root: Path, findings: list[Finding]) -> None:
    payloads = root / "src/core/payloads.h"
    if not payloads.is_file():  # scanning a subtree, not the repo
        return
    text = payloads.read_text(encoding="utf-8")
    tags = parse_enum(text, "StateTag")
    if not tags:
        findings.append(Finding(payloads, 1, "statetag-exhaustive",
                                "could not parse the StateTag enum"))
        return
    tag_set = set(tags)

    # stateTagName must name every tag (no default hides a gap).
    named = case_labels(text, "StateTag")
    for t in tags:
        if t not in named:
            findings.append(Finding(
                payloads, 1, "statetag-exhaustive",
                f"StateTag::{t} is missing from stateTagName()"))

    handled_anywhere: set[str] = set()
    for mech in ("naive.cpp", "increment.cpp", "snapshot.cpp"):
        p = root / "src/core" / mech
        mtext = strip_comments_and_strings(p.read_text(encoding="utf-8"))
        labels = case_labels(mtext, "StateTag")
        handled_anywhere |= labels
        for label in labels:
            if label not in tag_set:
                findings.append(Finding(
                    p, 1, "statetag-exhaustive",
                    f"dispatch names unknown StateTag::{label} "
                    "(stale case after an enum change?)"))
        if labels != tag_set and not has_rejecting_default(mtext,
                                                          "handleState"):
            missing = ", ".join(sorted(tag_set - labels))
            findings.append(Finding(
                p, 1, "statetag-exhaustive",
                f"handleState() neither names every StateTag ({missing} "
                "missing) nor rejects unknown tags in a default: branch"))
    for t in tags:
        if t not in handled_anywhere:
            findings.append(Finding(
                payloads, 1, "statetag-exhaustive",
                f"StateTag::{t} is dispatched by no mechanism "
                "(dead protocol surface)"))

    # MechanismKind: name table and factory must stay exhaustive.
    mech_h = root / "src/core/mechanism.h"
    kinds = set(parse_enum(mech_h.read_text(encoding="utf-8"),
                           "MechanismKind"))
    for rel_file, fn in (("src/core/mechanism.cpp", "mechanismKindName"),
                         ("src/core/binding.cpp", "makeMechanism")):
        p = root / rel_file
        ftext = strip_comments_and_strings(p.read_text(encoding="utf-8"))
        labels = case_labels(ftext, "MechanismKind")
        for label in labels - kinds:
            findings.append(Finding(
                p, 1, "mechanismkind-exhaustive",
                f"{fn}() names unknown MechanismKind::{label}"))
        for label in kinds - labels:
            findings.append(Finding(
                p, 1, "mechanismkind-exhaustive",
                f"MechanismKind::{label} is missing from {fn}()"))


def function_body(text: str, fn_name: str) -> str:
    """The brace-matched body of fn_name's definition ('' if absent).

    Expects comment/string-stripped text; the first `fn_name(...) {` with
    no `;` between the parameter list and the brace is taken to be the
    definition (call sites inside expressions hit a `;` or `)` first).
    """
    m = re.search(fn_name + r"\s*\([^;{]*\)[^;{]*\{", text)
    if not m:
        return ""
    depth = 1
    i = m.end()
    while i < len(text) and depth > 0:
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
        i += 1
    return text[m.end():i]


def check_wire_dispatch(root: Path, findings: list[Finding]) -> None:
    """The socket transport's wire codec must cover every StateTag in
    both directions. encodeStatePayload() ends in a rejecting dispatch,
    so a missing case there would abort at runtime — but only when that
    message kind first crosses a process boundary; this check moves the
    failure to lint time. decodeStatePayload() maps unknown tags to a
    decode error (connection drop), which would quietly blackhole a
    freshly added message kind."""
    wire = root / "src/net/wire.cpp"
    payloads = root / "src/core/payloads.h"
    if not wire.is_file() or not payloads.is_file():  # subtree scan
        return
    tags = set(parse_enum(payloads.read_text(encoding="utf-8"), "StateTag"))
    if not tags:  # statetag-exhaustive already reports the parse failure
        return
    wtext = strip_comments_and_strings(wire.read_text(encoding="utf-8"))
    for fn in ("encodeStatePayload", "decodeStatePayload"):
        body = function_body(wtext, fn)
        if not body:
            findings.append(Finding(
                wire, 1, "wirecodec-exhaustive",
                f"could not find {fn}() — the codec dispatch the socket "
                "transport serializes state messages through"))
            continue
        labels = case_labels(body, "StateTag")
        for label in sorted(labels - tags):
            findings.append(Finding(
                wire, 1, "wirecodec-exhaustive",
                f"{fn}() names unknown StateTag::{label} "
                "(stale case after an enum change?)"))
        for label in sorted(tags - labels):
            findings.append(Finding(
                wire, 1, "wirecodec-exhaustive",
                f"StateTag::{label} is missing from {fn}() — this "
                "message kind cannot cross a process boundary"))


def check_policy_dispatch(root: Path, findings: list[Finding]) -> None:
    """PolicyKind (service workload): the name table and the factory must
    each name every enumerator. Both switches live in policy.cpp, so the
    labels are collected per function body, not per file."""
    policy_h = root / "src/svc/policy.h"
    if not policy_h.is_file():  # scanning a subtree, not the repo
        return
    kinds = set(parse_enum(policy_h.read_text(encoding="utf-8"),
                           "PolicyKind"))
    if not kinds:
        findings.append(Finding(policy_h, 1, "policykind-exhaustive",
                                "could not parse the PolicyKind enum"))
        return
    p = root / "src/svc/policy.cpp"
    ptext = strip_comments_and_strings(p.read_text(encoding="utf-8"))
    for fn in ("policyKindName", "makePolicy"):
        body = function_body(ptext, fn)
        if not body:
            findings.append(Finding(p, 1, "policykind-exhaustive",
                                    f"could not find {fn}()"))
            continue
        labels = case_labels(body, "PolicyKind")
        for label in labels - kinds:
            findings.append(Finding(
                p, 1, "policykind-exhaustive",
                f"{fn}() names unknown PolicyKind::{label}"))
        for label in kinds - labels:
            findings.append(Finding(
                p, 1, "policykind-exhaustive",
                f"PolicyKind::{label} is missing from {fn}()"))


# ---------------------------------------------------------------------------
# Instrumentation macro guards (src/obs)
# ---------------------------------------------------------------------------

MACRO_DEF_RE = re.compile(r"^[ \t]*#[ \t]*define[ \t]+"
                          r"(LOADEX_TRACE_\w+|LOADEX_METRIC)\b",
                          re.MULTILINE)
GUARD_RE = re.compile(
    r"^\s*do\s*\{\s*if\s*\(auto\*\s*\w+\s*=\s*"
    r"::loadex::obs::(?:traceRecorder|metricsRegistry)\(\)\s*\)")


def macro_body(text: str, start: int) -> str:
    """The macro replacement text: lines joined across `\\` continuations."""
    lines = []
    pos = start
    while True:
        end = text.find("\n", pos)
        if end < 0:
            end = len(text)
        line = text[pos:end]
        cont = line.rstrip().endswith("\\")
        lines.append(line.rstrip().rstrip("\\"))
        pos = end + 1
        if not cont or pos >= len(text):
            return " ".join(lines)


def check_trace_macro_guard(root: Path, findings: list[Finding]) -> None:
    """Every instrumentation macro must evaluate no arguments when the
    session is off: its body must start with the null-check guard, so that
    call-site expressions (string concatenations, accessors, lambdas) cost
    nothing on untraced runs."""
    obs = root / "src/obs"
    if not obs.is_dir():
        return
    for path in sorted(obs.glob("*.h")):
        text = path.read_text(encoding="utf-8")
        for m in MACRO_DEF_RE.finditer(text):
            name = m.group(1)
            lineno = text.count("\n", 0, m.start()) + 1
            # Skip the macro's own name and parameter list.
            body_start = text.find(")", m.end())
            paren = text.find("(", m.end())
            if paren < 0 or (body_start >= 0 and paren > body_start):
                body_start = m.end()  # object-like macro (no parameters)
            else:
                body_start += 1
            body = macro_body(text, body_start if body_start >= 0
                              else m.end())
            if not GUARD_RE.search(body):
                findings.append(Finding(
                    path, lineno, "trace-macro-guard",
                    f"{name} must guard its body with `do {{ if (auto* x = "
                    "::loadex::obs::traceRecorder()/metricsRegistry()) {` "
                    "so disabled observation evaluates no arguments"))


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def collect_files(root: Path, explicit: list[str]) -> list[Path]:
    if explicit:
        return [Path(f).resolve() for f in explicit]
    files: list[Path] = []
    for d in SCAN_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for p in sorted(base.rglob("*")):
            if p.suffix in CXX_SUFFIXES and p.is_file():
                files.append(p)
    return files


def filter_allowed(findings: list[Finding],
                   file_raw: dict[Path, list[str]],
                   ) -> tuple[list[Finding], dict[tuple[Path, int], set[str]]]:
    """Apply allow() suppressions; returns the surviving findings plus a
    map of which (file, line) suppressed which rules — the input for the
    stale-suppression audit."""
    kept: list[Finding] = []
    used: dict[tuple[Path, int], set[str]] = {}
    for f in findings:
        lines = file_raw.get(f.path, [])
        raw = lines[f.line - 1] if 0 < f.line <= len(lines) else ""
        allowed = allowed_rules(raw)
        if f.rule in allowed or "all" in allowed:
            used.setdefault((f.path, f.line), set()).add(f.rule)
        else:
            kept.append(f)
    return kept, used


def check_stale_allows(file_raw: dict[Path, list[str]],
                       used: dict[tuple[Path, int], set[str]],
                       findings: list[Finding]) -> None:
    """Audit every allow() comment: naming an unknown rule, or a rule
    that suppressed nothing on its line, is itself a violation."""
    for path in sorted(file_raw):
        for lineno0, raw in enumerate(file_raw[path]):
            rules = allowed_rules(raw)
            if not rules:
                continue
            lineno = lineno0 + 1
            used_here = used.get((path, lineno), set())
            for rule in sorted(rules):
                if rule not in KNOWN_RULES:
                    findings.append(Finding(
                        path, lineno, "lint-allow",
                        f"allow({rule}) names an unknown rule — typo, or a "
                        "rule that was renamed/removed?"))
                elif rule == "all" and not used_here:
                    findings.append(Finding(
                        path, lineno, "lint-allow",
                        "allow(all) suppresses nothing on this line — "
                        "remove the stale suppression"))
                elif rule != "all" and rule not in used_here:
                    findings.append(Finding(
                        path, lineno, "lint-allow",
                        f"allow({rule}) suppresses nothing on this line — "
                        "remove the stale suppression"))


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=".",
                    help="repository root (default: cwd)")
    ap.add_argument("--json", action="store_true",
                    help="emit findings as a JSON object on stdout")
    ap.add_argument("files", nargs="*",
                    help="explicit files to scan (default: src tests bench "
                         "examples)")
    args = ap.parse_args(argv)
    root = Path(args.root).resolve()

    findings: list[Finding] = []
    files = collect_files(root, args.files)
    file_raw: dict[Path, list[str]] = {}
    lock_ranks = parse_lock_ranks(root)
    for path in files:
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as e:
            findings.append(Finding(path, 1, "io", f"unreadable: {e}"))
            continue
        rel = path.relative_to(root).as_posix() if path.is_relative_to(root) \
            else path.as_posix()
        raw_lines = text.splitlines()
        code_lines = strip_comments_and_strings(text).splitlines()
        file_raw[path] = raw_lines
        check_pragma_once(path, text, findings)
        check_lines(rel, path, code_lines, findings)
        check_unordered_iteration(rel, path, code_lines, findings)
        check_sync_annotations(rel, path, code_lines, findings)
        check_lock_hierarchy(rel, path, code_lines, lock_ranks, findings)
    if not args.files:
        check_enum_dispatch(root, findings)
        check_wire_dispatch(root, findings)
        check_policy_dispatch(root, findings)
        check_trace_macro_guard(root, findings)

    findings, used_allows = filter_allowed(findings, file_raw)
    check_stale_allows(file_raw, used_allows, findings)
    findings.sort(key=lambda f: (str(f.path), f.line, f.rule))

    if args.json:
        def rel_of(p: Path) -> str:
            return p.relative_to(root).as_posix() if p.is_relative_to(root) \
                else p.as_posix()
        print(json.dumps({
            "version": 1,
            "root": str(root),
            "files_scanned": len(files),
            "findings": [{"file": rel_of(f.path), "line": f.line,
                          "rule": f.rule, "message": f.message}
                         for f in findings],
        }, indent=2))
        return 1 if findings else 0

    for f in findings:
        print(f)
    if findings:
        print(f"loadex-lint: {len(findings)} violation(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"loadex-lint: OK ({len(files)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
