#!/usr/bin/env python3
"""loadex-lint: repo-specific static checks for the loadex codebase.

The simulator's core promise is bit-for-bit deterministic replay, and the
mechanisms' core promise is that every protocol message is accounted for.
Generic linters cannot check either, so this tool enforces the repo rules
that protect them:

  banned-randomness      rand()/srand()/std::random_device and raw engine
                         construction outside src/common/rng — all random
                         draws must flow through the seeded loadex::Rng
                         streams or replay breaks.
  banned-wallclock       std::chrono::{system,steady,high_resolution}_clock,
                         time(), clock(), gettimeofday — simulated time is
                         the only clock; wall time makes runs unreproducible.
                         The real-threads runtime's clock wrapper
                         (src/rt/clock.{h,cpp}) is the single exemption:
                         everything else in src/rt reads time through it.
  banned-threading       std::thread / mutexes / condition variables /
                         this_thread in src/ outside src/rt — the simulator
                         is single-threaded by construction, and real
                         concurrency lives only in the rt runtime. (Tests,
                         benches and examples may use threads freely.)
  thread-lifecycle       .detach() and std::terminate() anywhere in src/,
                         and .join() in src/ outside RtWorld/Supervisor
                         (src/rt/world.cpp, src/rt/supervisor.cpp) — every
                         rt thread must retire through the audited join
                         paths so drain()/stop() can guarantee quiescence;
                         a detached thread or a mid-run terminate breaks
                         the accounting invariants. (Tests, benches and
                         examples may join their own helper threads.)
  payload-cast           dynamic_cast to a *Payload type outside the
                         payloadCast<T> helper (src/core/payloads.h) — the
                         helper is what makes the debug-checked/release-
                         static downcast policy a single point of truth.
  unordered-iteration    iterating an unordered_{map,set} in src/core or
                         src/sim — iteration order is implementation-defined,
                         so any protocol or scheduling decision derived from
                         it is nondeterministic across platforms.
  naked-new-delete       raw new/delete expressions — ownership must be
                         expressed with unique_ptr/shared_ptr/containers.
  pragma-once            every header must contain #pragma once.
  statetag-exhaustive    the StateTag enum, stateTagName(), and each
                         mechanism's handleState() dispatch must stay in
                         sync: no stale case labels, no enumerator missing
                         from the name table, every enumerator consumed by
                         at least one mechanism, and every dispatch either
                         names all tags or ends in a rejecting default.
  mechanismkind-exhaustive  same for MechanismKind across mechanismKindName()
                         and the makeMechanism() factory.
  trace-macro-guard      every LOADEX_TRACE_* / LOADEX_METRIC macro defined
                         in src/obs must wrap its body in the
                         `do { if (auto* x = ::loadex::obs::...()) {` null
                         guard, so a disabled trace evaluates none of its
                         arguments (the zero-overhead-when-off promise).

A finding on one line can be silenced with a trailing
`// loadex-lint: allow(<rule>)` comment; `allow(all)` silences every rule.

Usage: loadex_lint.py [--root DIR] [FILES...]
Exits non-zero if any violation is found.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

CXX_SUFFIXES = {".h", ".hpp", ".cpp", ".cc"}
SCAN_DIRS = ("src", "tests", "bench", "examples")

ALLOW_RE = re.compile(r"//\s*loadex-lint:\s*allow\(([a-z\-, ]+)\)")


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Replace comments and string/char literal contents with spaces,
    preserving line structure so reported line numbers stay correct."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(c)
            elif c == "'":
                state = "char"
                out.append(c)
            else:
                out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            elif c == "\n":  # unterminated; keep line structure
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def allowed_rules(raw_line: str) -> set[str]:
    m = ALLOW_RE.search(raw_line)
    if not m:
        return set()
    return {r.strip() for r in m.group(1).split(",")}


def is_allowed(rule: str, raw_line: str) -> bool:
    allowed = allowed_rules(raw_line)
    return rule in allowed or "all" in allowed


# ---------------------------------------------------------------------------
# Per-line rules
# ---------------------------------------------------------------------------

RANDOMNESS_RE = re.compile(
    r"(?<![\w:])(?:std::)?(?:rand|srand|rand_r|drand48)\s*\("
    r"|std::random_device"
    r"|std::(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine)\b"
)
WALLCLOCK_RE = re.compile(
    r"std::chrono::(?:system_clock|steady_clock|high_resolution_clock)"
    r"|(?<![\w:])(?:::)?gettimeofday\s*\("
    r"|(?<![\w:.>])(?:std::)?time\s*\(\s*(?:NULL|nullptr|0|&)"
    r"|(?<![\w:.>])(?:std::)?clock\s*\(\s*\)"
)
NEW_RE = re.compile(r"(?<![\w:.])new\s+(?:\(|[A-Za-z_(])")
DELETE_RE = re.compile(r"(?<![\w:.])delete(?:\s*\[\s*\])?\s+[A-Za-z_(*]")
THREADING_RE = re.compile(
    r"std::(?:jthread\b|thread\b|mutex\b|recursive_mutex\b|timed_mutex\b"
    r"|shared_mutex\b|shared_timed_mutex\b|condition_variable\w*"
    r"|this_thread\b|lock_guard\b|unique_lock\b|scoped_lock\b|shared_lock\b"
    r"|promise\b|future\b|async\b|barrier\b|latch\b)"
)
PAYLOAD_CAST_RE = re.compile(r"dynamic_cast\s*<[^>]*Payload")
# Thread lifecycle: node threads are retired only by RtWorld/Supervisor
# joins. A detached thread escapes drain()/stop()'s join guarantees (its
# writes are never ordered before stats reads), and std::terminate tears
# the process down mid-invariant; neither has a legitimate call site.
THREAD_DETACH_RE = re.compile(r"\.\s*detach\s*\(")
TERMINATE_RE = re.compile(r"(?<![\w:])std::terminate\s*\(")
THREAD_JOIN_RE = re.compile(r"\.\s*join\s*\(")

RANDOMNESS_ALLOWED = ("src/common/rng.h", "src/common/rng.cpp")
# The rt runtime's clock wrapper is the one legal window onto host time.
WALLCLOCK_ALLOWED = ("src/rt/clock.h", "src/rt/clock.cpp")
# payloadCast<T> itself must spell the dynamic_cast it encapsulates.
PAYLOAD_CAST_ALLOWED = ("src/core/payloads.h",)
# The only two files allowed to join a node/supervisor thread. (Tests and
# benches may join their own helper threads; the src-side restriction is
# what keeps every rt thread's retirement on the audited paths.)
THREAD_JOIN_ALLOWED = ("src/rt/world.cpp", "src/rt/supervisor.cpp")


def rng_exempt(rel: str) -> bool:
    return rel in RANDOMNESS_ALLOWED


def threading_banned(rel: str) -> bool:
    """Real concurrency is confined to the rt runtime: everywhere else in
    src/ a thread or a lock is either nondeterminism or dead weight."""
    return rel.startswith("src/") and not rel.startswith("src/rt/")


def check_lines(rel: str, path: Path, raw_lines: list[str],
                code_lines: list[str], findings: list[Finding]) -> None:
    for lineno0, (raw, code) in enumerate(zip(raw_lines, code_lines)):
        lineno = lineno0 + 1
        if not rng_exempt(rel) and RANDOMNESS_RE.search(code):
            if not is_allowed("banned-randomness", raw):
                findings.append(Finding(
                    path, lineno, "banned-randomness",
                    "unseeded/raw randomness; draw from a loadex::Rng "
                    "stream (src/common/rng.h) so runs stay replayable"))
        if rel not in WALLCLOCK_ALLOWED and WALLCLOCK_RE.search(code):
            if not is_allowed("banned-wallclock", raw):
                findings.append(Finding(
                    path, lineno, "banned-wallclock",
                    "wall-clock time source; simulated time "
                    "(sim::World::now) is the only clock — the rt runtime "
                    "reads time via rt::MonotonicClock (src/rt/clock.h)"))
        if threading_banned(rel) and THREADING_RE.search(code):
            if not is_allowed("banned-threading", raw):
                findings.append(Finding(
                    path, lineno, "banned-threading",
                    "threading primitive outside src/rt; the simulator is "
                    "single-threaded by construction — real concurrency "
                    "belongs in the rt runtime"))
        if rel.startswith("src/"):
            if THREAD_DETACH_RE.search(code) and \
                    not is_allowed("thread-lifecycle", raw):
                findings.append(Finding(
                    path, lineno, "thread-lifecycle",
                    "detach() in src/; a detached thread escapes the "
                    "join paths drain()/stop() rely on — let RtWorld or "
                    "the Supervisor own the thread's retirement"))
            if TERMINATE_RE.search(code) and \
                    not is_allowed("thread-lifecycle", raw):
                findings.append(Finding(
                    path, lineno, "thread-lifecycle",
                    "std::terminate() in src/; tearing the process down "
                    "mid-run voids every accounting invariant — fail via "
                    "LOADEX_EXPECT or propagate an error instead"))
            if rel not in THREAD_JOIN_ALLOWED and \
                    THREAD_JOIN_RE.search(code) and \
                    not is_allowed("thread-lifecycle", raw):
                findings.append(Finding(
                    path, lineno, "thread-lifecycle",
                    "join() outside RtWorld/Supervisor; thread retirement "
                    "in src/ is confined to src/rt/world.cpp and "
                    "src/rt/supervisor.cpp so quiescence stays auditable"))
        if rel not in PAYLOAD_CAST_ALLOWED and PAYLOAD_CAST_RE.search(code):
            if not is_allowed("payload-cast", raw):
                findings.append(Finding(
                    path, lineno, "payload-cast",
                    "dynamic_cast to a payload type; use payloadCast<T> "
                    "(src/core/payloads.h) so the checked-downcast policy "
                    "stays in one place"))
        if NEW_RE.search(code) and not is_allowed("naked-new-delete", raw):
            findings.append(Finding(
                path, lineno, "naked-new-delete",
                "raw new expression; use std::make_unique/make_shared "
                "or a container"))
        if DELETE_RE.search(code) and not is_allowed("naked-new-delete", raw):
            findings.append(Finding(
                path, lineno, "naked-new-delete",
                "raw delete expression; express ownership with smart "
                "pointers"))


# ---------------------------------------------------------------------------
# unordered-container iteration in decision paths (src/core, src/sim)
# ---------------------------------------------------------------------------

UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;{()]*>\s*&?\s*"
    r"(\w+)\s*[;={(]")
RANGE_FOR_RE = re.compile(r"for\s*\([^;)]*:\s*(?:\*?\s*)?([\w.\->]+)\s*\)")
DIRECT_ITER_RE = re.compile(
    r"for\s*\([^;]*:\s*[^)]*unordered_(?:map|set)")


def check_unordered_iteration(rel: str, path: Path, raw_lines: list[str],
                              code_lines: list[str],
                              findings: list[Finding]) -> None:
    if not (rel.startswith("src/core/") or rel.startswith("src/sim/")
            or rel.startswith("src/obs/")):
        return
    unordered_names: set[str] = set()
    for code in code_lines:
        for m in UNORDERED_DECL_RE.finditer(code):
            unordered_names.add(m.group(1))
    # Member names also appear without the trailing underscore at use sites?
    # No: C++ names match exactly; just look up the declared spelling.
    for lineno0, (raw, code) in enumerate(zip(raw_lines, code_lines)):
        lineno = lineno0 + 1
        hit = DIRECT_ITER_RE.search(code) is not None
        if not hit:
            m = RANGE_FOR_RE.search(code)
            if m:
                # `for (x : foo.bar_)` → compare the last path component.
                target = re.split(r"[.>]", m.group(1))[-1]
                hit = target in unordered_names
        if hit and not is_allowed("unordered-iteration", raw):
            findings.append(Finding(
                path, lineno, "unordered-iteration",
                "iteration over an unordered container in a protocol/"
                "scheduling path; order is implementation-defined — use a "
                "std::map/std::vector or iterate ranks 0..nprocs"))


# ---------------------------------------------------------------------------
# pragma once
# ---------------------------------------------------------------------------

def check_pragma_once(path: Path, text: str, findings: list[Finding]) -> None:
    if path.suffix not in (".h", ".hpp"):
        return
    if "#pragma once" not in text:
        findings.append(Finding(
            path, 1, "pragma-once", "header is missing #pragma once"))


# ---------------------------------------------------------------------------
# Enum dispatch exhaustiveness
# ---------------------------------------------------------------------------

def parse_enum(text: str, enum_name: str) -> list[str]:
    m = re.search(r"enum\s+class\s+" + enum_name + r"\b[^{]*\{(.*?)\}",
                  text, re.DOTALL)
    if not m:
        return []
    body = strip_comments_and_strings(m.group(1))
    return re.findall(r"\b(k\w+)\b", body)


def case_labels(text: str, enum_name: str) -> set[str]:
    return set(re.findall(r"case\s+" + enum_name + r"::(k\w+)", text))


def has_rejecting_default(text: str, fn_name: str) -> bool:
    """True if fn_name's body has a `default:` that raises a contract error."""
    m = re.search(fn_name + r"\s*\([^;{]*\)[^;{]*\{", text)
    if not m:
        return False
    body = text[m.end():]
    d = body.find("default:")
    if d < 0:
        return False
    return "LOADEX_EXPECT" in body[d:d + 300] or "throw" in body[d:d + 300]


def check_enum_dispatch(root: Path, findings: list[Finding]) -> None:
    payloads = root / "src/core/payloads.h"
    if not payloads.is_file():  # scanning a subtree, not the repo
        return
    text = payloads.read_text(encoding="utf-8")
    tags = parse_enum(text, "StateTag")
    if not tags:
        findings.append(Finding(payloads, 1, "statetag-exhaustive",
                                "could not parse the StateTag enum"))
        return
    tag_set = set(tags)

    # stateTagName must name every tag (no default hides a gap).
    named = case_labels(text, "StateTag")
    for t in tags:
        if t not in named:
            findings.append(Finding(
                payloads, 1, "statetag-exhaustive",
                f"StateTag::{t} is missing from stateTagName()"))

    handled_anywhere: set[str] = set()
    for mech in ("naive.cpp", "increment.cpp", "snapshot.cpp"):
        p = root / "src/core" / mech
        mtext = strip_comments_and_strings(p.read_text(encoding="utf-8"))
        labels = case_labels(mtext, "StateTag")
        handled_anywhere |= labels
        for label in labels:
            if label not in tag_set:
                findings.append(Finding(
                    p, 1, "statetag-exhaustive",
                    f"dispatch names unknown StateTag::{label} "
                    "(stale case after an enum change?)"))
        if labels != tag_set and not has_rejecting_default(mtext,
                                                          "handleState"):
            missing = ", ".join(sorted(tag_set - labels))
            findings.append(Finding(
                p, 1, "statetag-exhaustive",
                f"handleState() neither names every StateTag ({missing} "
                "missing) nor rejects unknown tags in a default: branch"))
    for t in tags:
        if t not in handled_anywhere:
            findings.append(Finding(
                payloads, 1, "statetag-exhaustive",
                f"StateTag::{t} is dispatched by no mechanism "
                "(dead protocol surface)"))

    # MechanismKind: name table and factory must stay exhaustive.
    mech_h = root / "src/core/mechanism.h"
    kinds = set(parse_enum(mech_h.read_text(encoding="utf-8"),
                           "MechanismKind"))
    for rel_file, fn in (("src/core/mechanism.cpp", "mechanismKindName"),
                         ("src/core/binding.cpp", "makeMechanism")):
        p = root / rel_file
        ftext = strip_comments_and_strings(p.read_text(encoding="utf-8"))
        labels = case_labels(ftext, "MechanismKind")
        for label in labels - kinds:
            findings.append(Finding(
                p, 1, "mechanismkind-exhaustive",
                f"{fn}() names unknown MechanismKind::{label}"))
        for label in kinds - labels:
            findings.append(Finding(
                p, 1, "mechanismkind-exhaustive",
                f"MechanismKind::{label} is missing from {fn}()"))


# ---------------------------------------------------------------------------
# Instrumentation macro guards (src/obs)
# ---------------------------------------------------------------------------

MACRO_DEF_RE = re.compile(r"^[ \t]*#[ \t]*define[ \t]+"
                          r"(LOADEX_TRACE_\w+|LOADEX_METRIC)\b",
                          re.MULTILINE)
GUARD_RE = re.compile(
    r"^\s*do\s*\{\s*if\s*\(auto\*\s*\w+\s*=\s*"
    r"::loadex::obs::(?:traceRecorder|metricsRegistry)\(\)\s*\)")


def macro_body(text: str, start: int) -> str:
    """The macro replacement text: lines joined across `\\` continuations."""
    lines = []
    pos = start
    while True:
        end = text.find("\n", pos)
        if end < 0:
            end = len(text)
        line = text[pos:end]
        cont = line.rstrip().endswith("\\")
        lines.append(line.rstrip().rstrip("\\"))
        pos = end + 1
        if not cont or pos >= len(text):
            return " ".join(lines)


def check_trace_macro_guard(root: Path, findings: list[Finding]) -> None:
    """Every instrumentation macro must evaluate no arguments when the
    session is off: its body must start with the null-check guard, so that
    call-site expressions (string concatenations, accessors, lambdas) cost
    nothing on untraced runs."""
    obs = root / "src/obs"
    if not obs.is_dir():
        return
    for path in sorted(obs.glob("*.h")):
        text = path.read_text(encoding="utf-8")
        for m in MACRO_DEF_RE.finditer(text):
            name = m.group(1)
            lineno = text.count("\n", 0, m.start()) + 1
            # Skip the macro's own name and parameter list.
            body_start = text.find(")", m.end())
            paren = text.find("(", m.end())
            if paren < 0 or (body_start >= 0 and paren > body_start):
                body_start = m.end()  # object-like macro (no parameters)
            else:
                body_start += 1
            body = macro_body(text, body_start if body_start >= 0
                              else m.end())
            if not GUARD_RE.search(body):
                findings.append(Finding(
                    path, lineno, "trace-macro-guard",
                    f"{name} must guard its body with `do {{ if (auto* x = "
                    "::loadex::obs::traceRecorder()/metricsRegistry()) {` "
                    "so disabled observation evaluates no arguments"))


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def collect_files(root: Path, explicit: list[str]) -> list[Path]:
    if explicit:
        return [Path(f).resolve() for f in explicit]
    files: list[Path] = []
    for d in SCAN_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for p in sorted(base.rglob("*")):
            if p.suffix in CXX_SUFFIXES and p.is_file():
                files.append(p)
    return files


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=".",
                    help="repository root (default: cwd)")
    ap.add_argument("files", nargs="*",
                    help="explicit files to scan (default: src tests bench "
                         "examples)")
    args = ap.parse_args(argv)
    root = Path(args.root).resolve()

    findings: list[Finding] = []
    files = collect_files(root, args.files)
    for path in files:
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as e:
            findings.append(Finding(path, 1, "io", f"unreadable: {e}"))
            continue
        rel = path.relative_to(root).as_posix() if path.is_relative_to(root) \
            else path.as_posix()
        raw_lines = text.splitlines()
        code_lines = strip_comments_and_strings(text).splitlines()
        check_pragma_once(path, text, findings)
        check_lines(rel, path, raw_lines, code_lines, findings)
        check_unordered_iteration(rel, path, raw_lines, code_lines, findings)
    if not args.files:
        check_enum_dispatch(root, findings)
        check_trace_macro_guard(root, findings)

    for f in findings:
        print(f)
    if findings:
        print(f"loadex-lint: {len(findings)} violation(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"loadex-lint: OK ({len(files)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
