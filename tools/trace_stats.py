#!/usr/bin/env python3
"""trace_stats: analyze loadex observability artifacts (stdlib only).

Works on the two JSON document kinds the repo emits:

  * Chrome trace-event files written by obs::TraceRecorder
    (``--trace out.json`` on examples, loadable at ui.perfetto.dev), and
  * schema-versioned bench result files written by obs::ResultWriter
    (``--json out.json`` on the table benches, schema
    ``loadex.bench-result`` v1).

The document kind is auto-detected, so every subcommand accepts either.

Subcommands:

  summary FILE          For a trace: per-track span totals, message and
                        flow counts, snapshot/stall time, counter ranges.
                        For bench results: one table row per record.
  diff A B              Compare two bench-result files record-by-record
                        (keyed on problem/mechanism/strategy/nprocs) and
                        report makespan / memory / message deltas. Also
                        flags schedule-digest changes, i.e. replay drift.
  validate FILE...      Structural schema check for either kind; exits
                        non-zero on the first invalid file. Used by CI.

Usage: trace_stats.py summary out.json
       trace_stats.py diff before.json after.json
       trace_stats.py validate trace.json results.json
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from pathlib import Path

RESULT_SCHEMA = "loadex.bench-result"
RESULT_SCHEMA_VERSION = 1

# Required scalar fields of a v1 bench-result record, with their types.
# ``bool`` is listed before ``int`` checks below because bool is an int
# subclass in Python.
RECORD_FIELDS = {
    "problem": str,
    "mechanism": str,
    "strategy": str,
    "nprocs": int,
    "completed": bool,
    "makespan_s": float,
    "peak_active_mem": float,
    "state_messages": int,
    "state_bytes": int,
    "app_messages": int,
    "dynamic_decisions": int,
    "snapshots": int,
    "sim_events": int,
    "schedule_digest": int,
}

STALL_FIELDS = ("snapshot_max_s", "snapshot_total_s", "busy_max_s",
                "paused_max_s", "msg_handle_total_s")

# Trace-event phases the recorder emits; anything else is a schema error.
TRACE_PHASES = {"B", "E", "X", "i", "C", "s", "f", "M"}


def load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        raise SystemExit(f"{path}: top level must be a JSON object")
    return doc


def kind_of(doc: dict) -> str:
    """'trace', 'results', or raise."""
    if "traceEvents" in doc:
        return "trace"
    if doc.get("schema") == RESULT_SCHEMA:
        return "results"
    raise SystemExit("unrecognized document: expected a Chrome trace "
                     f"('traceEvents') or a {RESULT_SCHEMA} file ('schema')")


def fmt_table(header: list[str], rows: list[list[str]]) -> str:
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip()]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


# --------------------------------------------------------------------------
# validate


def validate_trace(path: str, doc: dict) -> list[str]:
    errors: list[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: 'traceEvents' must be an array"]
    # Open B spans per (pid, tid); E must close a matching B.
    open_spans: dict[tuple, int] = defaultdict(int)
    flows: dict[str, int] = defaultdict(int)  # id -> starts - ends
    last_ts: dict[tuple, float] = {}
    for n, ev in enumerate(events):
        where = f"{path}: traceEvents[{n}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: event must be an object")
            continue
        ph = ev.get("ph")
        if ph not in TRACE_PHASES:
            errors.append(f"{where}: bad phase {ph!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                errors.append(f"{where}: missing integer '{key}'")
        if ph == "M":
            continue  # metadata events carry no timestamp
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            errors.append(f"{where}: missing numeric 'ts'")
            continue
        track = (ev.get("pid"), ev.get("tid"))
        if ts < last_ts.get(track, float("-inf")):
            errors.append(f"{where}: ts goes backwards on track {track}")
        last_ts[track] = ts
        if ph == "B":
            open_spans[track] += 1
        elif ph == "E":
            open_spans[track] -= 1
            if open_spans[track] < 0:
                errors.append(f"{where}: 'E' with no open 'B' on {track}")
                open_spans[track] = 0
        elif ph == "X":
            if not isinstance(ev.get("dur"), (int, float)):
                errors.append(f"{where}: 'X' event missing numeric 'dur'")
        elif ph in ("s", "f"):
            if not ev.get("id"):
                errors.append(f"{where}: flow event missing 'id'")
            else:
                flows[ev["id"]] += 1 if ph == "s" else -1
        elif ph == "C":
            if "value" not in ev.get("args", {}):
                errors.append(f"{where}: counter missing args.value")
    for track, depth in sorted(open_spans.items()):
        if depth != 0:
            errors.append(f"{path}: track {track} ends with {depth} "
                          "unclosed 'B' span(s)")
    for fid, bal in sorted(flows.items()):
        if bal != 0:
            errors.append(f"{path}: flow id {fid} has unbalanced s/f "
                          f"(balance {bal:+d})")
    return errors


def validate_results(path: str, doc: dict) -> list[str]:
    errors: list[str] = []
    if doc.get("schema_version") != RESULT_SCHEMA_VERSION:
        errors.append(f"{path}: schema_version must be "
                      f"{RESULT_SCHEMA_VERSION}, got "
                      f"{doc.get('schema_version')!r}")
    if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        errors.append(f"{path}: missing non-empty 'bench' name")
    if not isinstance(doc.get("meta"), dict):
        errors.append(f"{path}: 'meta' must be an object")
    records = doc.get("records")
    if not isinstance(records, list):
        return errors + [f"{path}: 'records' must be an array"]
    for n, rec in enumerate(records):
        where = f"{path}: records[{n}]"
        if not isinstance(rec, dict):
            errors.append(f"{where}: record must be an object")
            continue
        for field, want in RECORD_FIELDS.items():
            val = rec.get(field)
            if field not in rec:
                errors.append(f"{where}: missing field '{field}'")
            elif want is bool and not isinstance(val, bool):
                errors.append(f"{where}: '{field}' must be a bool")
            elif want is int and (isinstance(val, bool)
                                  or not isinstance(val, int)):
                errors.append(f"{where}: '{field}' must be an integer")
            elif want is float and (isinstance(val, bool)
                                    or not isinstance(val, (int, float))):
                errors.append(f"{where}: '{field}' must be a number")
            elif want is str and not isinstance(val, str):
                errors.append(f"{where}: '{field}' must be a string")
        stall = rec.get("stall")
        if not isinstance(stall, dict):
            errors.append(f"{where}: missing 'stall' object")
        else:
            for field in STALL_FIELDS:
                if not isinstance(stall.get(field), (int, float)):
                    errors.append(f"{where}: stall.{field} must be a number")
        extra = rec.get("extra", {})
        if not isinstance(extra, dict) or any(
                not isinstance(v, (int, float)) for v in extra.values()):
            errors.append(f"{where}: 'extra' must map names to numbers")
    return errors


def cmd_validate(args: argparse.Namespace) -> int:
    status = 0
    for path in args.files:
        doc = load(path)
        kind = kind_of(doc)
        errors = (validate_trace if kind == "trace" else
                  validate_results)(path, doc)
        if errors:
            for e in errors[:args.max_errors]:
                print(e, file=sys.stderr)
            extra = len(errors) - args.max_errors
            if extra > 0:
                print(f"{path}: ... and {extra} more", file=sys.stderr)
            status = 1
        else:
            n = len(doc.get("traceEvents" if kind == "trace" else "records"))
            print(f"{path}: OK ({kind}, {n} "
                  f"{'events' if kind == 'trace' else 'records'})")
    return status


# --------------------------------------------------------------------------
# summary


def summarize_trace(doc: dict) -> None:
    events = doc["traceEvents"]
    track_names: dict[tuple, str] = {}
    span_time: dict[tuple, float] = defaultdict(float)   # (track, name) -> us
    span_count: dict[tuple, int] = defaultdict(int)
    open_b: dict[tuple, list] = defaultdict(list)        # track -> [(name, ts)]
    counters: dict[str, list] = {}
    instants = 0
    flow_starts = 0
    dropped = 0
    for ev in events:
        ph = ev["ph"]
        track = (ev.get("pid"), ev.get("tid"))
        if ph == "M":
            if ev.get("name") == "thread_name":
                track_names[track] = ev["args"]["name"]
            continue
        name = ev.get("name", "")
        if ph == "B":
            open_b[track].append((name, ev["ts"]))
        elif ph == "E":
            if open_b[track]:
                bname, bts = open_b[track].pop()
                span_time[(track, bname)] += ev["ts"] - bts
                span_count[(track, bname)] += 1
        elif ph == "X":
            span_time[(track, name)] += ev.get("dur", 0.0)
            span_count[(track, name)] += 1
        elif ph == "i":
            instants += 1
            if name == "trace buffer wrapped":
                dropped += 1
        elif ph == "s":
            flow_starts += 1
        elif ph == "C":
            for key, val in ev.get("args", {}).items():
                counters.setdefault(f"{name}.{key}" if key != "value"
                                    else name, []).append(val)

    print(f"Chrome trace: {len(events)} events, {len(track_names)} named "
          f"tracks, {flow_starts} message flows, {instants} instants")
    rows = []
    for (track, name), us in sorted(span_time.items(),
                                    key=lambda kv: -kv[1]):
        rows.append([track_names.get(track, str(track)), name,
                     str(span_count[(track, name)]), f"{us / 1e6:.6f}"])
    if rows:
        print()
        print(fmt_table(["track", "span", "count", "total (s)"], rows))
    if counters:
        print()
        rows = [[name, str(len(vals)), f"{min(vals):g}", f"{max(vals):g}"]
                for name, vals in sorted(counters.items())]
        print(fmt_table(["counter", "samples", "min", "max"], rows))
    # Stall roll-up: what bench tables report as "snapshot stall".
    stall = sum(us for (t, name), us in span_time.items()
                if name == "stalled")
    snaps = sum(c for (t, name), c in span_count.items()
                if name == "snapshot")
    print(f"\nSnapshot spans: {snaps}, total stalled time: "
          f"{stall / 1e6:.6f} s")
    if dropped:
        print(f"note: ring buffer wrapped — oldest events were dropped")


def summarize_results(doc: dict) -> None:
    meta = " ".join(f"{k}={v:g}" for k, v in sorted(doc["meta"].items()))
    print(f"bench {doc['bench']} ({meta}): {len(doc['records'])} records")
    rows = []
    for rec in doc["records"]:
        rows.append([
            rec["problem"], rec["mechanism"], rec["strategy"],
            str(rec["nprocs"]), "yes" if rec["completed"] else "NO",
            f"{rec['makespan_s']:.3f}", f"{rec['peak_active_mem']:.3g}",
            str(rec["state_messages"]),
            f"{rec['stall']['snapshot_total_s']:.3f}",
        ])
    print()
    print(fmt_table(["problem", "mechanism", "strategy", "np", "ok",
                     "makespan", "peak mem", "state msgs", "stall tot"],
                    rows))


def cmd_summary(args: argparse.Namespace) -> int:
    doc = load(args.file)
    if kind_of(doc) == "trace":
        summarize_trace(doc)
    else:
        summarize_results(doc)
    return 0


# --------------------------------------------------------------------------
# diff


def record_key(rec: dict) -> tuple:
    # Extras prefixed "host_" are volatile host-side measurements (wall
    # time, RSS, throughput): they vary run to run and must not break the
    # pairing of otherwise-identical records in a baseline diff.
    return (rec["problem"], rec["mechanism"], rec["strategy"],
            rec["nprocs"],
            tuple(sorted((k, v) for k, v in rec.get("extra", {}).items()
                         if not k.startswith("host_"))))


def pct(old: float, new: float) -> str:
    if old == 0:
        return "--" if new == 0 else "new"
    return f"{100.0 * (new - old) / old:+.1f}%"


def cmd_diff(args: argparse.Namespace) -> int:
    docs = [load(p) for p in (args.a, args.b)]
    for p, d in zip((args.a, args.b), docs):
        if kind_of(d) != "results":
            raise SystemExit(f"{p}: diff requires bench-result files")
    a_recs = {record_key(r): r for r in docs[0]["records"]}
    b_recs = {record_key(r): r for r in docs[1]["records"]}
    rows = []
    digest_changes = 0
    for key in sorted(a_recs.keys() | b_recs.keys()):
        ra, rb = a_recs.get(key), b_recs.get(key)
        label = f"{key[0]}/{key[1]}/{key[2]}/p{key[3]}"
        if ra is None or rb is None:
            rows.append([label, "only in " + (args.b if ra is None
                                              else args.a), "", "", ""])
            # An unpaired record means the run's identity changed (new or
            # vanished configuration, or a deterministic extra drifted);
            # for gating purposes that is as bad as a digest change.
            digest_changes += 1
            continue
        digest_same = ra["schedule_digest"] == rb["schedule_digest"]
        if not digest_same:
            digest_changes += 1
        rows.append([
            label,
            pct(ra["makespan_s"], rb["makespan_s"]),
            pct(ra["peak_active_mem"], rb["peak_active_mem"]),
            pct(ra["state_messages"], rb["state_messages"]),
            "same" if digest_same else "CHANGED",
        ])
    print(fmt_table(["record", "makespan", "peak mem", "state msgs",
                     "schedule"], rows))
    print(f"\n{len(a_recs.keys() & b_recs.keys())} records compared, "
          f"{digest_changes} schedule digest change(s)")
    # Digest drift with no intended semantic change means replay broke;
    # let CI gate on it explicitly.
    return 1 if (args.fail_on_digest_change and digest_changes) else 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("summary", help="summarize a trace or result file")
    p.add_argument("file")
    p.set_defaults(func=cmd_summary)

    p = sub.add_parser("diff", help="compare two bench-result files")
    p.add_argument("a")
    p.add_argument("b")
    p.add_argument("--fail-on-digest-change", action="store_true",
                   help="exit 1 if any matched record's schedule digest "
                        "differs (replay drift)")
    p.set_defaults(func=cmd_diff)

    p = sub.add_parser("validate", help="schema-check trace/result files")
    p.add_argument("files", nargs="+")
    p.add_argument("--max-errors", type=int, default=20)
    p.set_defaults(func=cmd_validate)

    args = parser.parse_args()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
